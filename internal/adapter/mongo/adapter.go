package mongo

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"calcite/internal/core"
	"calcite/internal/exec"
	"calcite/internal/plan"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// mongoTable exposes a collection as a single-column table: "a table is
// created for each document collection with a single column named _MAP: a
// map from document identifiers to their data" (§7.1).
type mongoTable struct {
	name  string
	store *Store
}

var mapRowType = types.Row(types.Field{
	Name: "_MAP",
	Type: types.Map(types.Varchar, types.Any),
})

func (t *mongoTable) Name() string             { return t.name }
func (t *mongoTable) RowType() *types.Type     { return mapRowType }
func (t *mongoTable) Stats() schema.Statistics { return schema.Statistics{RowCount: 500} }

// TransferCostFactor implements schema.RemoteTable.
func (t *mongoTable) TransferCostFactor() float64 { return 1 }

func (t *mongoTable) Scan() (schema.Cursor, error) {
	docs, err := t.store.Find(t.name, "{}")
	if err != nil {
		return nil, err
	}
	rows := make([][]any, len(docs))
	for i, d := range docs {
		rows[i] = []any{map[string]any(d)}
	}
	return schema.NewSliceCursor(rows), nil
}

// Adapter connects a Store under the "mongo" calling convention.
type Adapter struct {
	SchemaName string
	Store      *Store
	Conv       trait.Convention

	schema *schema.BaseSchema
}

// New builds the adapter from the store's collections.
func New(schemaName string, store *Store) *Adapter {
	a := &Adapter{
		SchemaName: schemaName,
		Store:      store,
		Conv:       trait.NewConvention("mongo"),
		schema:     schema.NewBaseSchema(schemaName),
	}
	for _, name := range store.CollectionNames() {
		a.schema.AddTable(&mongoTable{name: name, store: store})
	}
	return a
}

// AdapterSchema implements core.Adapter.
func (a *Adapter) AdapterSchema() schema.Schema { return a.schema }

func (a *Adapter) inConv(n rel.Node) bool {
	return trait.SameConvention(n.Traits().Convention, a.Conv)
}

func isLogical(n rel.Node) bool {
	return trait.SameConvention(n.Traits().Convention, trait.Logical)
}

// Rules implements core.Adapter: scans convert to the mongo convention and
// filters over _MAP['field'] expressions push down as JSON find documents.
func (a *Adapter) Rules() []plan.Rule {
	ts := trait.NewSet(a.Conv)
	return []plan.Rule{
		&plan.FuncRule{
			Name: "MongoScanRule",
			Op: plan.MatchNode(func(n rel.Node) bool {
				s, ok := n.(*rel.TableScan)
				if !ok || !isLogical(n) {
					return false
				}
				mt, mine := s.Table.(*mongoTable)
				return mine && mt.store == a.Store
			}),
			Fire: func(call *plan.Call) {
				s := call.Rel(0).(*rel.TableScan)
				call.Transform(rel.NewTableScan(a.Conv, s.Table, []string{s.Table.Name()}))
			},
		},
		&plan.FuncRule{
			Name: "MongoFilterRule",
			Op: plan.MatchNode(func(n rel.Node) bool {
				_, ok := n.(*rel.Filter)
				return ok && isLogical(n)
			}, plan.MatchNode(a.inConv)),
			Fire: func(call *plan.Call) {
				f := call.Rel(0).(*rel.Filter)
				var pushable, residual []rex.Node
				for _, term := range rex.Conjuncts(f.Condition) {
					if _, _, _, ok := mapFieldComparison(term); ok {
						pushable = append(pushable, term)
					} else {
						residual = append(residual, term)
					}
				}
				if len(pushable) == 0 {
					return
				}
				var node rel.Node = rel.NewFilterTraits("MongoFilter", ts, call.Rel(1), rex.And(pushable...))
				if len(residual) > 0 {
					node = rel.NewFilter(node, rex.And(residual...))
				}
				call.Transform(node)
			},
		},
	}
}

// mapFieldComparison decomposes a pushable condition of the form
// [CAST](_MAP['field']) OP literal.
func mapFieldComparison(term rex.Node) (field string, op string, val any, ok bool) {
	c, isCall := term.(*rex.Call)
	if !isCall || len(c.Operands) != 2 {
		return "", "", nil, false
	}
	opName := map[*rex.Operator]string{
		rex.OpEquals: "$eq", rex.OpNotEquals: "$ne",
		rex.OpGreater: "$gt", rex.OpGreaterEqual: "$gte",
		rex.OpLess: "$lt", rex.OpLessEqual: "$lte",
	}[c.Op]
	if opName == "" {
		return "", "", nil, false
	}
	fieldName, fok := mapFieldAccess(c.Operands[0])
	lit, lok := c.Operands[1].(*rex.Literal)
	if fok && lok && lit.Value != nil {
		return fieldName, opName, lit.Value, true
	}
	return "", "", nil, false
}

// mapFieldAccess recognizes ITEM($0, 'field'), possibly wrapped in CASTs.
func mapFieldAccess(e rex.Node) (string, bool) {
	for {
		c, ok := e.(*rex.Call)
		if !ok {
			return "", false
		}
		if c.Op == rex.OpCast {
			e = c.Operands[0]
			continue
		}
		if c.Op != rex.OpItem {
			return "", false
		}
		if _, ok := c.Operands[0].(*rex.InputRef); !ok {
			return "", false
		}
		key, ok := c.Operands[1].(*rex.Literal)
		if !ok {
			return "", false
		}
		name, ok := key.Value.(string)
		return name, ok
	}
}

// Converters implements core.Adapter.
func (a *Adapter) Converters() []core.ConverterReg {
	return []core.ConverterReg{{
		From: a.Conv,
		To:   trait.Enumerable,
		Factory: func(input rel.Node) rel.Node {
			return &toEnumerable{
				Converter: rel.NewConverter("MongoToEnumerable", trait.Enumerable, input),
				adapter:   a,
			}
		},
	}}
}

type toEnumerable struct {
	*rel.Converter
	adapter *Adapter
}

func (c *toEnumerable) WithNewInputs(inputs []rel.Node) rel.Node {
	return &toEnumerable{
		Converter: rel.NewConverter("MongoToEnumerable", trait.Enumerable, inputs[0]),
		adapter:   c.adapter,
	}
}

func (c *toEnumerable) Unwrap() rel.Node { return c.Converter }

func (c *toEnumerable) Bind(ctx *exec.Context) (schema.Cursor, error) {
	collection, filterJSON, err := ToFind(c.Inputs()[0])
	if err != nil {
		return nil, err
	}
	docs, err := c.adapter.Store.Find(collection, filterJSON)
	if err != nil {
		return nil, err
	}
	rows := make([][]any, len(docs))
	for i, d := range docs {
		rows[i] = []any{map[string]any(d)}
	}
	return schema.NewSliceCursor(rows), nil
}

// ToFind renders a mongo-convention subtree as (collection, find JSON) —
// the adapter's query-language translator.
func ToFind(n rel.Node) (string, string, error) {
	switch x := n.(type) {
	case *rel.TableScan:
		return x.Table.Name(), "{}", nil
	case *rel.Filter:
		collection, _, err := ToFind(x.Inputs()[0])
		if err != nil {
			return "", "", err
		}
		filter := map[string]any{}
		for _, term := range rex.Conjuncts(x.Condition) {
			field, op, val, ok := mapFieldComparison(term)
			if !ok {
				return "", "", fmt.Errorf("mongo: condition %s not translatable", term)
			}
			cond, _ := filter[field].(map[string]any)
			if cond == nil {
				cond = map[string]any{}
			}
			cond[op] = val
			filter[field] = cond
		}
		buf, err := marshalSorted(filter)
		if err != nil {
			return "", "", err
		}
		return collection, buf, nil
	}
	return "", "", fmt.Errorf("mongo: cannot translate %s", n.Op())
}

// marshalSorted renders a filter document with deterministic key order.
func marshalSorted(filter map[string]any) (string, error) {
	keys := make([]string, 0, len(filter))
	for k := range filter {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		v, err := json.Marshal(filter[k])
		if err != nil {
			return "", err
		}
		parts = append(parts, fmt.Sprintf("%q: %s", k, v))
	}
	return "{" + strings.Join(parts, ", ") + "}", nil
}
