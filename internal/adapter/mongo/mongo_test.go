package mongo_test

import (
	"strings"
	"testing"

	"calcite"
	"calcite/internal/adapter/mongo"
	"calcite/internal/types"
)

func zipsConn(t testing.TB) (*calcite.Connection, *mongo.Store) {
	t.Helper()
	store := mongo.NewStore()
	store.AddCollection("zips", []map[string]any{
		{"city": "AMSTERDAM", "pop": float64(821752), "loc": []any{4.9041, 52.3676}},
		{"city": "ROTTERDAM", "pop": float64(623652), "loc": []any{4.4777, 51.9244}},
		{"city": "UTRECHT", "pop": float64(345080), "loc": []any{5.1214, 52.0907}},
	})
	conn := calcite.Open()
	conn.RegisterAdapter(mongo.New("mongo_raw", store))
	return conn, store
}

// TestPaperZipsView runs §7.1's exact view definition and query pattern.
func TestPaperZipsView(t *testing.T) {
	conn, _ := zipsConn(t)
	if _, err := conn.Exec(`CREATE VIEW zips AS
		SELECT CAST(_MAP['city'] AS VARCHAR(20)) AS city,
		       CAST(_MAP['loc'][0] AS DOUBLE) AS longitude,
		       CAST(_MAP['loc'][1] AS DOUBLE) AS latitude
		FROM mongo_raw.zips`); err != nil {
		t.Fatal(err)
	}
	res, err := conn.Query("SELECT city, longitude FROM zips WHERE latitude > 52 ORDER BY city")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "AMSTERDAM" || res.Rows[1][0] != "UTRECHT" {
		t.Fatalf("rows: %v", res.Rows)
	}
}

// TestFilterPushdownToJSON: simple _MAP comparisons become find documents.
func TestFilterPushdownToJSON(t *testing.T) {
	conn, store := zipsConn(t)
	res, err := conn.Query(`SELECT CAST(_MAP['city'] AS VARCHAR(20)) AS city
		FROM mongo_raw.zips WHERE CAST(_MAP['pop'] AS DOUBLE) > 400000`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	q := store.LastQuery()
	if !strings.Contains(q, `"pop"`) || !strings.Contains(q, "$gt") {
		t.Errorf("filter not pushed: %q", q)
	}
}

// TestEqualityAndStringFilters.
func TestEqualityAndStringFilters(t *testing.T) {
	conn, store := zipsConn(t)
	res, err := conn.Query(`SELECT _MAP['pop'] FROM mongo_raw.zips WHERE CAST(_MAP['city'] AS VARCHAR(20)) = 'UTRECHT'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if pop, _ := types.AsFloat(res.Rows[0][0]); pop != 345080 {
		t.Fatalf("pop: %v", res.Rows[0][0])
	}
	if !strings.Contains(store.LastQuery(), `"city"`) {
		t.Errorf("query: %q", store.LastQuery())
	}
}

// TestStoreOperators exercises the store's find-document semantics directly.
func TestStoreOperators(t *testing.T) {
	store := mongo.NewStore()
	store.AddCollection("c", []map[string]any{
		{"a": float64(1)}, {"a": float64(5)}, {"b": "x"},
	})
	cases := []struct {
		filter string
		want   int
	}{
		{`{}`, 3},
		{`{"a": {"$gte": 1}}`, 2},
		{`{"a": {"$gt": 1, "$lt": 10}}`, 1},
		{`{"a": 5}`, 1},
		{`{"a": {"$ne": 5}}`, 1},
		{`{"b": "x"}`, 1},
		{`{"missing": 1}`, 0},
	}
	for _, c := range cases {
		docs, err := store.Find("c", c.filter)
		if err != nil {
			t.Fatalf("Find(%s): %v", c.filter, err)
		}
		if len(docs) != c.want {
			t.Errorf("Find(%s) = %d docs, want %d", c.filter, len(docs), c.want)
		}
	}
	if _, err := store.Find("nope", "{}"); err == nil {
		t.Error("unknown collection should error")
	}
	if _, err := store.Find("c", `{"a": {"$regex": "x"}}`); err == nil {
		t.Error("unsupported operator should error")
	}
}
