// Package mongo simulates a MongoDB-like document store for the
// semi-structured data support of §7.1: collections of JSON-like documents
// are exposed to the framework as tables with a single column named _MAP (a
// map from field names to values). Typed relational views are defined over
// the raw collections with CAST(_MAP['field'] AS type) projections — the
// paper's zips example. Pushed-down filters reach the store as JSON query
// documents (Table 2: "MongoDB → Java/JSON").
package mongo

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"calcite/internal/types"
)

// Store is the document database; filters arrive as JSON find documents.
type Store struct {
	mu          sync.Mutex
	collections map[string][]map[string]any
	// Queries records every find document received, as
	// "db.<collection>.find(<json>)".
	Queries []string
}

// NewStore creates an empty store.
func NewStore() *Store { return &Store{collections: map[string][]map[string]any{}} }

// AddCollection loads documents into a collection.
func (s *Store) AddCollection(name string, docs []map[string]any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.collections[strings.ToLower(name)] = docs
}

// CollectionNames lists collections.
func (s *Store) CollectionNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for n := range s.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LastQuery returns the most recent find document received.
func (s *Store) LastQuery() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.Queries) == 0 {
		return ""
	}
	return s.Queries[len(s.Queries)-1]
}

// Find executes a JSON filter document against a collection. Supported
// operators per field: direct value (equality), {"$eq": v}, {"$gt": v},
// {"$gte": v}, {"$lt": v}, {"$lte": v}, {"$ne": v}.
func (s *Store) Find(collection, filterJSON string) ([]map[string]any, error) {
	s.mu.Lock()
	docs, ok := s.collections[strings.ToLower(collection)]
	s.Queries = append(s.Queries, fmt.Sprintf("db.%s.find(%s)", collection, filterJSON))
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("mongo: unknown collection %q", collection)
	}
	var filter map[string]any
	if strings.TrimSpace(filterJSON) == "" {
		filter = map[string]any{}
	} else if err := json.Unmarshal([]byte(filterJSON), &filter); err != nil {
		return nil, fmt.Errorf("mongo: bad filter %q: %v", filterJSON, err)
	}
	var out []map[string]any
	for _, doc := range docs {
		match, err := matches(doc, filter)
		if err != nil {
			return nil, err
		}
		if match {
			out = append(out, doc)
		}
	}
	return out, nil
}

func matches(doc map[string]any, filter map[string]any) (bool, error) {
	for field, cond := range filter {
		val, present := doc[field]
		ops, isOps := cond.(map[string]any)
		if !isOps {
			if !present || types.Compare(normalize(val), normalize(cond)) != 0 {
				return false, nil
			}
			continue
		}
		for op, want := range ops {
			if !present {
				return false, nil
			}
			cmp := types.Compare(normalize(val), normalize(want))
			okCmp := false
			switch op {
			case "$eq":
				okCmp = cmp == 0
			case "$ne":
				okCmp = cmp != 0
			case "$gt":
				okCmp = cmp > 0
			case "$gte":
				okCmp = cmp >= 0
			case "$lt":
				okCmp = cmp < 0
			case "$lte":
				okCmp = cmp <= 0
			default:
				return false, fmt.Errorf("mongo: unsupported operator %q", op)
			}
			if !okCmp {
				return false, nil
			}
		}
	}
	return true, nil
}

// normalize converts json.Unmarshal values to the engine's runtime types.
func normalize(v any) any {
	switch x := v.(type) {
	case float64:
		return x
	case int:
		return int64(x)
	case []any:
		return x
	}
	return v
}
