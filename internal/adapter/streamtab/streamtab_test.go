package streamtab

import (
	"testing"

	"calcite/internal/schema"
	"calcite/internal/types"
)

func table(t *testing.T) *Table {
	t.Helper()
	tb := NewTable("orders", types.Row(
		types.Field{Name: "rowtime", Type: types.Timestamp},
		types.Field{Name: "units", Type: types.BigInt},
	), 0)
	for i := int64(0); i < 5; i++ {
		if err := tb.Append([]any{i * 1000, i * 10}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func drain(t *testing.T, c schema.Cursor) int {
	t.Helper()
	n := 0
	for {
		_, err := c.Next()
		if err == schema.Done {
			return n
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
}

func TestHistoryVsStream(t *testing.T) {
	tb := table(t)
	tb.SetWatermark(2000)
	hist, err := tb.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if n := drain(t, hist); n != 3 { // rowtimes 0,1000,2000
		t.Errorf("history rows: %d", n)
	}
	strm, err := tb.StreamScan()
	if err != nil {
		t.Fatal(err)
	}
	if n := drain(t, strm); n != 5 {
		t.Errorf("stream rows: %d", n)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	tb := table(t)
	if err := tb.Append([]any{int64(100), int64(1)}); err == nil {
		t.Error("out-of-order append must fail")
	}
	if err := tb.Append([]any{"notatime", int64(1)}); err == nil {
		t.Error("non-int64 rowtime must fail")
	}
	// Equal timestamps are fine (non-decreasing).
	if err := tb.Append([]any{int64(4000), int64(1)}); err != nil {
		t.Errorf("equal rowtime rejected: %v", err)
	}
}

func TestRowtimeColumnAndStats(t *testing.T) {
	tb := table(t)
	if tb.RowtimeColumn() != 0 {
		t.Error("rowtime column")
	}
	if tb.Stats().RowCount != 5 {
		t.Errorf("stats: %+v", tb.Stats())
	}
	a := New("s")
	a.AddTable(tb)
	if _, ok := a.AdapterSchema().Table("orders"); !ok {
		t.Error("adapter schema missing table")
	}
}
