// Package streamtab is the stream adapter (§7.2): tables whose rows are
// time-ordered events. Querying a stream table without the STREAM directive
// returns "existing records which have already been received" (the history,
// up to the watermark); with STREAM, the system processes the incoming
// records — here, every buffered event including those past the watermark.
package streamtab

import (
	"fmt"
	"sort"
	"sync"

	"calcite/internal/core"
	"calcite/internal/plan"
	"calcite/internal/schema"
	"calcite/internal/types"
)

// Table is a time-ordered event table. It implements schema.ScannableTable
// (history), schema.StreamableTable and StreamScan (incoming records).
type Table struct {
	name       string
	rowType    *types.Type
	rowtimeCol int

	mu        sync.RWMutex
	events    [][]any
	watermark int64
}

// NewTable creates a stream table; rowtimeCol is the ordinal of the
// monotonic event-time column (int64 epoch millis).
func NewTable(name string, rowType *types.Type, rowtimeCol int) *Table {
	return &Table{name: name, rowType: rowType, rowtimeCol: rowtimeCol}
}

// Append adds events; rowtime must be non-decreasing.
func (t *Table) Append(rows ...[]any) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	last := int64(-1 << 62)
	if n := len(t.events); n > 0 {
		last, _ = t.events[n-1][t.rowtimeCol].(int64)
	}
	for _, row := range rows {
		ts, ok := row[t.rowtimeCol].(int64)
		if !ok {
			return fmt.Errorf("streamtab: rowtime column must be int64 millis, got %T", row[t.rowtimeCol])
		}
		if ts < last {
			return fmt.Errorf("streamtab: out-of-order event (rowtime %d < %d); streams are time-ordered sets of records", ts, last)
		}
		last = ts
		t.events = append(t.events, row)
	}
	return nil
}

// SetWatermark marks events at or before ts as historical.
func (t *Table) SetWatermark(ts int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.watermark = ts
}

func (t *Table) Name() string         { return t.name }
func (t *Table) RowType() *types.Type { return t.rowType }
func (t *Table) RowtimeColumn() int   { return t.rowtimeCol }

func (t *Table) Stats() schema.Statistics {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return schema.Statistics{RowCount: float64(len(t.events))}
}

// Scan returns the historical rows (rowtime <= watermark): the semantics of
// querying a stream without the STREAM keyword.
func (t *Table) Scan() (schema.Cursor, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	i := sort.Search(len(t.events), func(i int) bool {
		ts, _ := t.events[i][t.rowtimeCol].(int64)
		return ts > t.watermark
	})
	return schema.NewSliceCursor(append([][]any(nil), t.events[:i]...)), nil
}

// StreamScan returns all buffered events — the incoming records a STREAM
// query processes.
func (t *Table) StreamScan() (schema.Cursor, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return schema.NewSliceCursor(append([][]any(nil), t.events...)), nil
}

// Adapter groups stream tables in a schema.
type Adapter struct {
	schema *schema.BaseSchema
}

// New creates a stream adapter schema.
func New(name string) *Adapter { return &Adapter{schema: schema.NewBaseSchema(name)} }

// AddTable registers a stream table.
func (a *Adapter) AddTable(t *Table) { a.schema.AddTable(t) }

// AdapterSchema implements core.Adapter.
func (a *Adapter) AdapterSchema() schema.Schema { return a.schema }

// Rules implements core.Adapter (streams execute in the enumerable
// convention; windowing is planned by sql2rel).
func (a *Adapter) Rules() []plan.Rule { return nil }

// Converters implements core.Adapter.
func (a *Adapter) Converters() []core.ConverterReg { return nil }
