// Package streamtab is the stream adapter (§7.2): tables whose rows are
// time-ordered events. Querying a stream table without the STREAM directive
// returns "existing records which have already been received" (the history,
// up to the watermark); with STREAM, the system processes the incoming
// records — here, every buffered event including those past the watermark.
//
// The table is batch-native: both the history and the stream enumerate as
// column-major typed batches (schema.BatchScannableTable plus
// StreamScanBatches), so continuous queries ingest vectors rather than
// boxed rows. For tests it is also a replay source with controllable
// event-time skew: SetMaxSkew admits bounded out-of-order appends, and
// SetReplaySkew deterministically perturbs the arrival order of an
// in-order event log so the same out-of-order run can be replayed.
package streamtab

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"calcite/internal/core"
	"calcite/internal/plan"
	"calcite/internal/schema"
	"calcite/internal/types"
)

// Table is a time-ordered event table. It implements schema.ScannableTable
// and schema.BatchScannableTable (history), schema.StreamableTable and
// StreamScan/StreamScanBatches (incoming records).
type Table struct {
	name       string
	rowType    *types.Type
	rowtimeCol int

	mu        sync.RWMutex
	events    [][]any
	maxTs     int64
	hasEvents bool
	watermark int64
	maxSkew   int64

	// Replay skew: when replaySkew > 0, StreamScan yields the events in a
	// deterministically perturbed arrival order (seeded, bounded by the
	// skew) instead of append order.
	replaySkew int64
	replaySeed int64

	// cols/vecs are the lazily built column-major snapshot of the arrival-
	// ordered events (boxed columns plus typed vectors), serving
	// StreamScanBatches zero-copy; Append and SetReplaySkew invalidate both.
	cols  [][]any
	vecs  []*schema.Vector
	colsN int
}

// NewTable creates a stream table; rowtimeCol is the ordinal of the
// monotonic event-time column (epoch millis, time.Time, or any integer
// type — values are normalized to int64 millis on append).
func NewTable(name string, rowType *types.Type, rowtimeCol int) *Table {
	return &Table{name: name, rowType: rowType, rowtimeCol: rowtimeCol}
}

// SetMaxSkew allows appends whose rowtime trails the maximum seen so far by
// up to ms milliseconds — the source-side counterpart of a consumer's
// bounded out-of-orderness. Zero (the default) requires non-decreasing
// rowtimes.
func (t *Table) SetMaxSkew(ms int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.maxSkew = ms
}

// SetReplaySkew makes StreamScan replay the events in a deterministic
// pseudo-random arrival order where each event may arrive up to ms
// milliseconds of event time late relative to earlier arrivals. The same
// (seed, ms) pair always produces the same order; ms == 0 restores append
// order.
func (t *Table) SetReplaySkew(seed, ms int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.replaySeed, t.replaySkew = seed, ms
	t.cols, t.vecs, t.colsN = nil, nil, 0
}

// rowtimeMillis coerces a rowtime value to epoch milliseconds.
func rowtimeMillis(v any) (int64, bool) {
	if ts, ok := v.(time.Time); ok {
		return ts.UnixMilli(), true
	}
	return types.AsInt(v)
}

// Append adds events. Rowtimes may be time.Time or any integer type and are
// stored normalized to int64 millis; each must be within the configured max
// skew of the largest rowtime seen so far.
func (t *Table) Append(rows ...[]any) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, row := range rows {
		ts, ok := rowtimeMillis(row[t.rowtimeCol])
		if !ok {
			return fmt.Errorf("streamtab: rowtime column must be a timestamp (time.Time or integer millis), got %T", row[t.rowtimeCol])
		}
		if t.hasEvents && ts < t.maxTs-t.maxSkew {
			return fmt.Errorf("streamtab: out-of-order event (rowtime %d < %d - max skew %d); streams are time-ordered sets of records", ts, t.maxTs, t.maxSkew)
		}
		if _, isInt := row[t.rowtimeCol].(int64); !isInt {
			// Normalize in a copy; the caller keeps its slice.
			row = append([]any(nil), row...)
			row[t.rowtimeCol] = ts
		}
		if !t.hasEvents || ts > t.maxTs {
			t.maxTs, t.hasEvents = ts, true
		}
		t.events = append(t.events, row)
	}
	t.cols, t.vecs, t.colsN = nil, nil, 0
	return nil
}

// SetWatermark marks events at or before ts as historical.
func (t *Table) SetWatermark(ts int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.watermark = ts
}

func (t *Table) Name() string         { return t.name }
func (t *Table) RowType() *types.Type { return t.rowType }
func (t *Table) RowtimeColumn() int   { return t.rowtimeCol }

func (t *Table) Stats() schema.Statistics {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return schema.Statistics{RowCount: float64(len(t.events))}
}

// history returns the rows with rowtime <= watermark, in arrival order.
// Callers hold at least a read lock.
func (t *Table) history() [][]any {
	rows := t.arrivalLocked()
	out := make([][]any, 0, len(rows))
	for _, row := range rows {
		if ts, _ := rowtimeMillis(row[t.rowtimeCol]); ts <= t.watermark {
			out = append(out, row)
		}
	}
	return out
}

// arrivalLocked returns the events in arrival order: append order, or the
// seeded skewed permutation when replay skew is set. Callers hold at least
// a read lock.
func (t *Table) arrivalLocked() [][]any {
	if t.replaySkew <= 0 {
		return t.events
	}
	// Perturb each event's position by sorting on rowtime plus a seeded
	// jitter in [0, skew]. If a precedes b in the result then
	// ts(a) <= ts(b) + skew, so the arrival stream's out-of-orderness is
	// bounded by exactly the configured skew.
	type keyed struct {
		key int64
		row []any
	}
	rng := t.replaySeed
	perturbed := make([]keyed, len(t.events))
	for i, row := range t.events {
		// Deterministic LCG (Knuth's MMIX constants).
		rng = rng*6364136223846793005 + 1442695040888963407
		jitter := (rng >> 33) % (t.replaySkew + 1)
		if jitter < 0 {
			jitter += t.replaySkew + 1
		}
		ts, _ := rowtimeMillis(row[t.rowtimeCol])
		perturbed[i] = keyed{key: ts + jitter, row: row}
	}
	sort.SliceStable(perturbed, func(i, j int) bool { return perturbed[i].key < perturbed[j].key })
	out := make([][]any, len(perturbed))
	for i, k := range perturbed {
		out[i] = k.row
	}
	return out
}

// Scan returns the historical rows (rowtime <= watermark): the semantics of
// querying a stream without the STREAM keyword.
func (t *Table) Scan() (schema.Cursor, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return schema.NewSliceCursor(t.history()), nil
}

// ScanBatches implements schema.BatchScannableTable for the history.
func (t *Table) ScanBatches(batchSize int) (schema.BatchCursor, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rows := t.history()
	cols, vecs := buildColumnar(rows, t.rowType)
	return newBatchCursor(cols, vecs, len(rows), batchSize), nil
}

// StreamScan returns all buffered events in arrival order — the incoming
// records a STREAM query processes.
func (t *Table) StreamScan() (schema.Cursor, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rows := t.arrivalLocked()
	return schema.NewSliceCursor(append([][]any(nil), rows...)), nil
}

// StreamScanBatches enumerates the incoming records as zero-copy windows
// over a cached columnar snapshot of the arrival order.
func (t *Table) StreamScanBatches(batchSize int) (schema.BatchCursor, error) {
	if batchSize <= 0 {
		batchSize = schema.DefaultBatchSize
	}
	t.mu.RLock()
	cols, vecs, n := t.cols, t.vecs, t.colsN
	t.mu.RUnlock()
	if cols == nil {
		t.mu.Lock()
		if t.cols == nil {
			rows := t.arrivalLocked()
			t.cols, t.vecs = buildColumnar(rows, t.rowType)
			t.colsN = len(rows)
		}
		cols, vecs, n = t.cols, t.vecs, t.colsN
		t.mu.Unlock()
	}
	return newBatchCursor(cols, vecs, n, batchSize), nil
}

// buildColumnar transposes rows into boxed columns plus typed vectors
// (vector kinds from the declared column types).
func buildColumnar(rows [][]any, rowType *types.Type) ([][]any, []*schema.Vector) {
	w := len(rowType.Fields)
	cols := make([][]any, w)
	for c := 0; c < w; c++ {
		col := make([]any, len(rows))
		for r, row := range rows {
			col[r] = row[c]
		}
		cols[c] = col
	}
	var vecs []*schema.Vector
	if !schema.ForceBoxed() {
		vecs = make([]*schema.Vector, w)
		for c := 0; c < w; c++ {
			vecs[c] = schema.BuildVector(cols[c], schema.VecKindForType(rowType.Fields[c].Type))
		}
	}
	return cols, vecs
}

// batchCursor serves batches as zero-copy slices of a columnar snapshot.
type batchCursor struct {
	cols      [][]any
	vecs      []*schema.Vector
	n         int
	batchSize int
	pos       int
	seq       int64
}

func newBatchCursor(cols [][]any, vecs []*schema.Vector, n, batchSize int) *batchCursor {
	if batchSize <= 0 {
		batchSize = schema.DefaultBatchSize
	}
	return &batchCursor{cols: cols, vecs: vecs, n: n, batchSize: batchSize}
}

func (c *batchCursor) NextBatch() (*schema.Batch, error) {
	if c.pos >= c.n {
		return nil, schema.Done
	}
	end := c.pos + c.batchSize
	if end > c.n {
		end = c.n
	}
	cols := make([][]any, len(c.cols))
	for i := range cols {
		cols[i] = c.cols[i][c.pos:end]
	}
	var vecs []*schema.Vector
	if c.vecs != nil {
		vecs = make([]*schema.Vector, len(c.vecs))
		for i, v := range c.vecs {
			vecs[i] = v.Slice(c.pos, end)
		}
	}
	b := &schema.Batch{Len: end - c.pos, Cols: cols, Vecs: vecs, Seq: c.seq}
	c.seq++
	c.pos = end
	return b, nil
}

func (c *batchCursor) Close() error { return nil }

// Adapter groups stream tables in a schema.
type Adapter struct {
	schema *schema.BaseSchema
}

// New creates a stream adapter schema.
func New(name string) *Adapter { return &Adapter{schema: schema.NewBaseSchema(name)} }

// AddTable registers a stream table.
func (a *Adapter) AddTable(t *Table) { a.schema.AddTable(t) }

// AdapterSchema implements core.Adapter.
func (a *Adapter) AdapterSchema() schema.Schema { return a.schema }

// Rules implements core.Adapter (streams execute in the enumerable
// convention; windowing is planned by sql2rel).
func (a *Adapter) Rules() []plan.Rule { return nil }

// Converters implements core.Adapter.
func (a *Adapter) Converters() []core.ConverterReg { return nil }
