package splunk_test

import (
	"strings"
	"testing"

	"calcite/internal/adapter/splunk"
	"calcite/internal/adapter/sqldb"
	"calcite/internal/core"
	"calcite/internal/rel"
	"calcite/internal/rel2sql"
	"calcite/internal/types"
)

// setupFigure2 builds the paper's Figure 2 scenario: a Products table in a
// MySQL-like server and an Orders event index in a Splunk-like engine, with
// the ODBC lookup wired between them.
func setupFigure2(t testing.TB) (*core.Framework, *sqldb.Server, *splunk.Engine) {
	mysql := sqldb.NewServer("mysql")
	mysql.CreateTable("products",
		types.Row(
			types.Field{Name: "id", Type: types.BigInt},
			types.Field{Name: "name", Type: types.Varchar},
			types.Field{Name: "price", Type: types.Double},
		),
		[][]any{
			{int64(1), "Widget", 9.99},
			{int64(2), "Gadget", 19.99},
			{int64(3), "Gizmo", 29.99},
		})

	engine := splunk.NewEngine()
	engine.AddIndex(&splunk.Index{
		Name: "orders",
		Fields: []types.Field{
			{Name: "rowtime", Type: types.Timestamp},
			{Name: "product_id", Type: types.BigInt},
			{Name: "units", Type: types.BigInt},
		},
		Events: [][]any{
			{int64(1000), int64(1), int64(10)},
			{int64(2000), int64(2), int64(30)},
			{int64(3000), int64(3), int64(40)},
			{int64(4000), int64(1), int64(50)},
			{int64(5000), int64(2), int64(5)},
		},
	})
	engine.SetLookup(func(table, key string, value any) ([]string, [][]any, error) {
		rows, err := mysql.Lookup(table, key, value)
		if err != nil {
			return nil, nil, err
		}
		return []string{"id", "name", "price"}, rows, nil
	})

	f := core.New()
	jdbcAdapter, err := sqldb.New("mysql", mysql, rel2sql.MySQL)
	if err != nil {
		t.Fatal(err)
	}
	f.RegisterAdapter(jdbcAdapter)
	f.RegisterAdapter(splunk.New("splunk", engine))
	return f, mysql, engine
}

// TestFigure2JoinPushedIntoSplunk reproduces the paper's optimization
// process: the WHERE clause is pushed into splunk by an adapter rule, and
// the join lands in splunk convention as a lookup join.
func TestFigure2JoinPushedIntoSplunk(t *testing.T) {
	f, _, engine := setupFigure2(t)
	sql := `
		SELECT p.name, o.units
		FROM splunk.orders o
		JOIN mysql.products p ON o.product_id = p.id
		WHERE o.units > 25`
	res, err := f.Execute(sql)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3: %v", len(res.Rows), res.Rows)
	}
	// The final plan must have pushed both the filter and the join into the
	// Splunk engine: the SPL text contains the filter and a lookup stage.
	spl := engine.LastQuery()
	if !strings.Contains(spl, "units>25") {
		t.Errorf("filter not pushed into splunk; SPL = %q", spl)
	}
	if !strings.Contains(spl, "lookup products") {
		t.Errorf("join not pushed into splunk; SPL = %q", spl)
	}
	// And the optimized plan mentions the lookup join.
	logical, err := f.ParseAndConvert(sql)
	if err != nil {
		t.Fatal(err)
	}
	best, err := f.Optimize(logical)
	if err != nil {
		t.Fatal(err)
	}
	planText := rel.Explain(best)
	if !strings.Contains(planText, "SplunkLookupJoin") {
		t.Errorf("optimized plan lacks SplunkLookupJoin:\n%s", planText)
	}
}

// TestFigure2NoPushdownAblation disables the splunk rules (ablation A4):
// the same query must still run, executed by the enumerable engine above
// two converters.
func TestFigure2NoPushdownAblation(t *testing.T) {
	mysql := sqldb.NewServer("mysql")
	mysql.CreateTable("products",
		types.Row(
			types.Field{Name: "id", Type: types.BigInt},
			types.Field{Name: "name", Type: types.Varchar},
		),
		[][]any{{int64(1), "Widget"}, {int64(2), "Gadget"}})

	engine := splunk.NewEngine()
	engine.AddIndex(&splunk.Index{
		Name: "orders",
		Fields: []types.Field{
			{Name: "product_id", Type: types.BigInt},
			{Name: "units", Type: types.BigInt},
		},
		Events: [][]any{{int64(1), int64(10)}, {int64(2), int64(30)}},
	})

	f := core.New()
	jdbcAdapter, err := sqldb.New("mysql", mysql, rel2sql.MySQL)
	if err != nil {
		t.Fatal(err)
	}
	f.RegisterAdapter(jdbcAdapter)
	// Register only schema+converter of splunk, not its rules: scans stay
	// logical... the scan rule is required to enter splunk convention at
	// all, so keep scan conversion but drop filter/join pushdown.
	sa := splunk.New("splunk", engine)
	f.Catalog.AddSchema(sa.AdapterSchema())
	f.PhysicalRules = append(f.PhysicalRules, sa.Rules()[0]) // scan rule only
	for _, c := range sa.Converters() {
		f.Converters = append(f.Converters, c)
	}

	res, err := f.Execute(`
		SELECT p.name, o.units
		FROM splunk.orders o JOIN mysql.products p ON o.product_id = p.id
		WHERE o.units > 25`)
	if err != nil {
		t.Fatalf("Execute without pushdown: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "Gadget" {
		t.Fatalf("rows: %v", res.Rows)
	}
	// Without pushdown rules the SPL must be a bare search.
	if spl := engine.LastQuery(); strings.Contains(spl, "lookup") || strings.Contains(spl, "units>") {
		t.Errorf("unexpected pushdown in ablation: %q", spl)
	}
}
