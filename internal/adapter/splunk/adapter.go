package splunk

import (
	"fmt"
	"strings"

	"calcite/internal/core"
	"calcite/internal/cost"
	"calcite/internal/exec"
	"calcite/internal/meta"
	"calcite/internal/plan"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// splunkTable is the adapter's handle for an engine index.
type splunkTable struct {
	name    string
	rowType *types.Type
	engine  *Engine
	rows    float64
}

func (t *splunkTable) Name() string         { return t.name }
func (t *splunkTable) RowType() *types.Type { return t.rowType }
func (t *splunkTable) Stats() schema.Statistics {
	return schema.Statistics{RowCount: t.rows}
}

// TransferCostFactor implements schema.RemoteTable.
func (t *splunkTable) TransferCostFactor() float64 { return 1 }

// Scan falls back to an unfiltered search (enumerable full scan).
func (t *splunkTable) Scan() (schema.Cursor, error) {
	_, rows, err := t.engine.Search("search index=" + t.name)
	if err != nil {
		return nil, err
	}
	return schema.NewSliceCursor(rows), nil
}

// Adapter connects a Splunk Engine to the framework under the "splunk"
// calling convention of Figure 2.
type Adapter struct {
	SchemaName string
	Engine     *Engine
	Conv       trait.Convention

	schema *schema.BaseSchema
}

// New builds the adapter, reading index metadata from the engine.
func New(schemaName string, engine *Engine) *Adapter {
	a := &Adapter{
		SchemaName: schemaName,
		Engine:     engine,
		Conv:       trait.NewConvention("splunk"),
		schema:     schema.NewBaseSchema(schemaName),
	}
	for _, name := range engine.IndexNames() {
		fields, _ := engine.IndexFields(name)
		rowCount := 100.0
		if idx, ok := engine.indexes[strings.ToLower(name)]; ok {
			rowCount = float64(len(idx.Events))
		}
		a.schema.AddTable(&splunkTable{
			name:    name,
			rowType: types.Row(fields...),
			engine:  engine,
			rows:    rowCount,
		})
	}
	return a
}

// AdapterSchema implements core.Adapter.
func (a *Adapter) AdapterSchema() schema.Schema { return a.schema }

func (a *Adapter) inConv(n rel.Node) bool {
	return trait.SameConvention(n.Traits().Convention, a.Conv)
}

func isLogical(n rel.Node) bool {
	return trait.SameConvention(n.Traits().Convention, trait.Logical)
}

// LookupJoin is the join pushed into the Splunk engine (Figure 2: "a
// planner rule pushes the join through the splunk-to-spark converter, and
// the join is now in splunk convention, running inside the Splunk engine").
// The right side is resolved per-row through the engine's external lookup.
type LookupJoin struct {
	base        rel.Node // the splunk-convention left input
	rowType     *types.Type
	RemoteTable string
	RemoteKey   string
	LocalField  string
	RemoteCols  []string
	adapter     *Adapter
}

// NewLookupJoin builds a lookup join node.
func NewLookupJoin(a *Adapter, left rel.Node, rowType *types.Type, remoteTable, remoteKey, localField string, remoteCols []string) *LookupJoin {
	return &LookupJoin{
		base:        left,
		rowType:     rowType,
		RemoteTable: remoteTable,
		RemoteKey:   remoteKey,
		LocalField:  localField,
		RemoteCols:  remoteCols,
		adapter:     a,
	}
}

func (j *LookupJoin) Op() string           { return "SplunkLookupJoin" }
func (j *LookupJoin) Inputs() []rel.Node   { return []rel.Node{j.base} }
func (j *LookupJoin) RowType() *types.Type { return j.rowType }
func (j *LookupJoin) Traits() trait.Set    { return trait.NewSet(j.adapter.Conv) }
func (j *LookupJoin) Attrs() string {
	return fmt.Sprintf("lookup=[%s], key=[%s=%s]", j.RemoteTable, j.RemoteKey, j.LocalField)
}
func (j *LookupJoin) WithNewInputs(inputs []rel.Node) rel.Node {
	return NewLookupJoin(j.adapter, inputs[0], j.rowType, j.RemoteTable, j.RemoteKey, j.LocalField, j.RemoteCols)
}

// Rules implements core.Adapter.
func (a *Adapter) Rules() []plan.Rule {
	ts := trait.NewSet(a.Conv)
	return []plan.Rule{
		// Scan conversion.
		&plan.FuncRule{
			Name: "SplunkScanRule",
			Op: plan.MatchNode(func(n rel.Node) bool {
				s, ok := n.(*rel.TableScan)
				if !ok || !isLogical(n) {
					return false
				}
				st, mine := s.Table.(*splunkTable)
				return mine && st.engine == a.Engine
			}),
			Fire: func(call *plan.Call) {
				s := call.Rel(0).(*rel.TableScan)
				call.Transform(rel.NewTableScan(a.Conv, s.Table, []string{s.Table.Name()}))
			},
		},
		// Filter pushdown: "an adapter which can perform filtering on the
		// backend can implement a rule which matches a LogicalFilter and
		// converts it to the adapter's calling convention" (§5).
		&plan.FuncRule{
			Name: "SplunkFilterRule",
			Op: plan.MatchNode(func(n rel.Node) bool {
				_, ok := n.(*rel.Filter)
				return ok && isLogical(n)
			}, plan.MatchNode(a.inConv)),
			Fire: func(call *plan.Call) {
				f := call.Rel(0).(*rel.Filter)
				child := call.Rel(1)
				var pushable, residual []rex.Node
				for _, term := range rex.Conjuncts(f.Condition) {
					if splCondition(term, child.RowType().Fields) != "" {
						pushable = append(pushable, term)
					} else {
						residual = append(residual, term)
					}
				}
				if len(pushable) == 0 {
					return
				}
				var node rel.Node = rel.NewFilterTraits("SplunkFilter", ts, child, rex.And(pushable...))
				if len(residual) > 0 {
					node = rel.NewFilter(node, rex.And(residual...))
				}
				call.Transform(node)
			},
		},
		// Projection pushdown ("| fields ...").
		&plan.FuncRule{
			Name: "SplunkProjectRule",
			Op: plan.MatchNode(func(n rel.Node) bool {
				_, ok := n.(*rel.Project)
				return ok && isLogical(n)
			}, plan.MatchNode(a.inConv)),
			Fire: func(call *plan.Call) {
				p := call.Rel(0).(*rel.Project)
				for _, e := range p.Exprs {
					if _, ok := e.(*rex.InputRef); !ok {
						return // SPL fields stage projects columns only
					}
				}
				call.Transform(rel.NewProjectTraits("SplunkProject", ts, call.Rel(1), p.Exprs, p.FieldNames()))
			},
		},
		// Limit pushdown ("| head N").
		&plan.FuncRule{
			Name: "SplunkLimitRule",
			Op: plan.MatchNode(func(n rel.Node) bool {
				s, ok := n.(*rel.Sort)
				return ok && isLogical(n) && len(s.Collation) == 0 && s.Fetch >= 0 && s.Offset == 0
			}, plan.MatchNode(a.inConv)),
			Fire: func(call *plan.Call) {
				s := call.Rel(0).(*rel.Sort)
				call.Transform(rel.NewSortTraits("SplunkLimit", ts, call.Rel(1), nil, 0, s.Fetch))
			},
		},
		// The Figure 2 rule: push an inner equi-join between a splunk-side
		// input and a remote SQL table through the converter, turning it
		// into an in-engine lookup join.
		&plan.FuncRule{
			Name: "SplunkLookupJoinRule",
			Op: plan.MatchNode(func(n rel.Node) bool {
				j, ok := n.(*rel.Join)
				return ok && isLogical(n) && j.Kind == rel.InnerJoin
			}, plan.MatchNode(a.inConv), plan.MatchNode(func(n rel.Node) bool {
				s, ok := n.(*rel.TableScan)
				return ok && s.Traits().Convention != nil &&
					strings.HasPrefix(s.Traits().Convention.ConventionName(), "jdbc-")
			})),
			Fire: func(call *plan.Call) {
				j := call.Rel(0).(*rel.Join)
				left := call.Rel(1)
				right := call.Rel(2).(*rel.TableScan)
				nLeft := rel.FieldCount(left)
				info := exec.AnalyzeJoin(j.Condition, nLeft)
				if len(info.LeftKeys) != 1 || info.Residual != nil {
					return
				}
				localField := left.RowType().Fields[info.LeftKeys[0]].Name
				remoteKey := right.RowType().Fields[info.RightKeys[0]].Name
				remoteCols := right.RowType().FieldNames()
				call.Transform(NewLookupJoin(a, left, j.RowType(),
					right.Table.Name(), remoteKey, localField, remoteCols))
			},
		},
	}
}

// Converters implements core.Adapter.
func (a *Adapter) Converters() []core.ConverterReg {
	return []core.ConverterReg{{
		From: a.Conv,
		To:   trait.Enumerable,
		Factory: func(input rel.Node) rel.Node {
			return &toEnumerable{
				Converter: rel.NewConverter("SplunkToEnumerable", trait.Enumerable, input),
				adapter:   a,
			}
		},
	}}
}

// MetaProviders implements core.MetaAdapter: a lookup join produces about
// one row per (filtered) left row and costs one remote lookup each, which
// is what makes the Figure 2 final plan cheaper than shipping both tables
// to an external engine.
func (a *Adapter) MetaProviders() []meta.Provider {
	return []meta.Provider{{
		Name: "splunk",
		RowCount: func(q *meta.Query, n rel.Node) (float64, bool) {
			if lj, ok := n.(*LookupJoin); ok {
				return q.RowCount(lj.Inputs()[0]), true
			}
			return 0, false
		},
		NonCumulativeCost: func(q *meta.Query, n rel.Node) (cost.Cost, bool) {
			if lj, ok := n.(*LookupJoin); ok {
				left := q.RowCount(lj.Inputs()[0])
				return cost.New(left, left, left*0.1, 0), true
			}
			return cost.Zero, false
		},
	}}
}

// toEnumerable executes a splunk-convention subtree by generating SPL.
type toEnumerable struct {
	*rel.Converter
	adapter *Adapter
}

func (c *toEnumerable) WithNewInputs(inputs []rel.Node) rel.Node {
	return &toEnumerable{
		Converter: rel.NewConverter("SplunkToEnumerable", trait.Enumerable, inputs[0]),
		adapter:   c.adapter,
	}
}

func (c *toEnumerable) Unwrap() rel.Node { return c.Converter }

func (c *toEnumerable) Bind(ctx *exec.Context) (schema.Cursor, error) {
	spl, err := ToSPL(c.Inputs()[0])
	if err != nil {
		return nil, err
	}
	_, rows, err := c.adapter.Engine.Search(spl)
	if err != nil {
		return nil, err
	}
	return schema.NewSliceCursor(rows), nil
}

// SPL returns the search string for the subtree (for EXPLAIN/tests).
func (c *toEnumerable) SPL() (string, error) { return ToSPL(c.Inputs()[0]) }

// ToSPL renders a splunk-convention subtree as a search pipeline — the
// adapter's query-language translator (Table 2: "Splunk → SPL").
func ToSPL(n rel.Node) (string, error) {
	switch x := n.(type) {
	case *rel.TableScan:
		return "search index=" + x.Table.Name(), nil
	case *rel.Filter:
		child, err := ToSPL(x.Inputs()[0])
		if err != nil {
			return "", err
		}
		if strings.Contains(child, "|") {
			return "", fmt.Errorf("splunk: filter must precede pipeline stages")
		}
		var conds []string
		for _, term := range rex.Conjuncts(x.Condition) {
			c := splCondition(term, x.Inputs()[0].RowType().Fields)
			if c == "" {
				return "", fmt.Errorf("splunk: condition %s is not pushable", term)
			}
			conds = append(conds, c)
		}
		return child + " " + strings.Join(conds, " "), nil
	case *rel.Project:
		child, err := ToSPL(x.Inputs()[0])
		if err != nil {
			return "", err
		}
		inFields := x.Inputs()[0].RowType().Fields
		names := make([]string, len(x.Exprs))
		for i, e := range x.Exprs {
			ref, ok := e.(*rex.InputRef)
			if !ok {
				return "", fmt.Errorf("splunk: fields stage projects columns only")
			}
			names[i] = inFields[ref.Index].Name
		}
		return child + " | fields " + strings.Join(names, ", "), nil
	case *rel.Sort:
		child, err := ToSPL(x.Inputs()[0])
		if err != nil {
			return "", err
		}
		if len(x.Collation) != 0 || x.Fetch < 0 {
			return "", fmt.Errorf("splunk: only head (limit) is supported")
		}
		return fmt.Sprintf("%s | head %d", child, x.Fetch), nil
	case *LookupJoin:
		child, err := ToSPL(x.Inputs()[0])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s | lookup %s %s=%s output %s",
			child, x.RemoteTable, x.RemoteKey, x.LocalField,
			strings.Join(x.RemoteCols, ",")), nil
	}
	return "", fmt.Errorf("splunk: cannot translate %s to SPL", n.Op())
}

// splCondition renders one conjunct as an SPL search term, or "" when the
// condition cannot be pushed.
func splCondition(term rex.Node, fields []types.Field) string {
	c, ok := term.(*rex.Call)
	if !ok || len(c.Operands) != 2 {
		return ""
	}
	op := map[*rex.Operator]string{
		rex.OpEquals: "=", rex.OpNotEquals: "!=",
		rex.OpGreater: ">", rex.OpGreaterEqual: ">=",
		rex.OpLess: "<", rex.OpLessEqual: "<=",
	}[c.Op]
	if op == "" {
		return ""
	}
	ref, rok := c.Operands[0].(*rex.InputRef)
	lit, lok := c.Operands[1].(*rex.Literal)
	if !rok || !lok {
		// Try the mirrored form: literal OP ref.
		lit, lok = c.Operands[0].(*rex.Literal)
		ref, rok = c.Operands[1].(*rex.InputRef)
		if !rok || !lok {
			return ""
		}
		if m := rex.Mirror(c.Op); m != nil {
			op = map[*rex.Operator]string{
				rex.OpEquals: "=", rex.OpNotEquals: "!=",
				rex.OpGreater: ">", rex.OpGreaterEqual: ">=",
				rex.OpLess: "<", rex.OpLessEqual: "<=",
			}[m]
		}
	}
	if ref.Index >= len(fields) {
		return ""
	}
	val := lit.Value
	var rendered string
	switch v := val.(type) {
	case string:
		rendered = `"` + v + `"`
	case nil:
		return ""
	default:
		rendered = types.FormatValue(v)
	}
	return fields[ref.Index].Name + op + rendered
}
