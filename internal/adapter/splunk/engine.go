// Package splunk simulates the Splunk backend of Figure 2 of the paper: a
// log/event store queried through an SPL-like search pipeline language, with
// an ODBC-style lookup facility into an external SQL database. It is the
// backend that demonstrates the paper's headline cross-system optimization:
// a filter pushed into the splunk convention by an adapter rule, and a join
// pushed through the splunk-to-enumerable converter so it runs inside the
// Splunk engine via lookups.
//
// The search language (a faithful miniature of SPL):
//
//	search index=orders units>25 product_id=3
//	    | fields product_id, units
//	    | lookup products id=product_id output name
//	    | head 10
package splunk

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"calcite/internal/types"
)

// LookupFunc resolves an external lookup: given the remote table, key column
// and key value, it returns matching remote rows and their column names —
// "Splunk can perform lookups into MySQL via ODBC" (§4).
type LookupFunc func(table, keyColumn string, value any) (cols []string, rows [][]any, err error)

// Index is one event index (a table of events).
type Index struct {
	Name   string
	Fields []types.Field
	Events [][]any
}

// Engine is the Splunk-like server. All access goes through Search.
type Engine struct {
	// Network simulates the wire to this backend (per request + per result
	// row); zero by default.
	Network NetworkCost

	mu      sync.Mutex
	indexes map[string]*Index
	lookup  LookupFunc
	// Queries records every SPL string received.
	Queries []string
}

// NetworkCost models the wire between the framework and the engine.
type NetworkCost struct {
	PerRequest time.Duration
	PerRow     time.Duration
}

// Charge sleeps for the simulated transfer of n result rows.
func (c NetworkCost) Charge(rows int) {
	d := c.PerRequest + time.Duration(rows)*c.PerRow
	if d > 0 {
		time.Sleep(d)
	}
}

// NewEngine creates an empty engine.
func NewEngine() *Engine { return &Engine{indexes: map[string]*Index{}} }

// AddIndex registers an event index.
func (e *Engine) AddIndex(idx *Index) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.indexes[strings.ToLower(idx.Name)] = idx
}

// SetLookup wires the external lookup facility (the ODBC connection of
// Figure 2).
func (e *Engine) SetLookup(f LookupFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lookup = f
}

// IndexNames lists indexes.
func (e *Engine) IndexNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var names []string
	for _, idx := range e.indexes {
		names = append(names, idx.Name)
	}
	return names
}

// IndexFields returns an index's schema.
func (e *Engine) IndexFields(name string) ([]types.Field, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	idx, ok := e.indexes[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	return idx.Fields, true
}

// LastQuery returns the most recent SPL text received.
func (e *Engine) LastQuery() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.Queries) == 0 {
		return ""
	}
	return e.Queries[len(e.Queries)-1]
}

// Search executes an SPL pipeline and returns column names plus rows.
func (e *Engine) Search(spl string) ([]string, [][]any, error) {
	e.mu.Lock()
	e.Queries = append(e.Queries, spl)
	lookup := e.lookup
	e.mu.Unlock()

	stages := strings.Split(spl, "|")
	head := strings.TrimSpace(stages[0])
	if !strings.HasPrefix(head, "search ") {
		return nil, nil, fmt.Errorf("splunk: query must start with 'search': %q", spl)
	}
	cols, rows, err := e.runSearch(strings.TrimSpace(head[len("search "):]))
	if err != nil {
		return nil, nil, err
	}
	defer func() { e.Network.Charge(len(rows)) }()
	for _, stage := range stages[1:] {
		stage = strings.TrimSpace(stage)
		switch {
		case strings.HasPrefix(stage, "fields "):
			cols, rows, err = applyFields(strings.TrimSpace(stage[len("fields "):]), cols, rows)
		case strings.HasPrefix(stage, "lookup "):
			if lookup == nil {
				return nil, nil, fmt.Errorf("splunk: no lookup connection configured")
			}
			cols, rows, err = applyLookup(strings.TrimSpace(stage[len("lookup "):]), cols, rows, lookup)
		case strings.HasPrefix(stage, "head "):
			n, perr := strconv.Atoi(strings.TrimSpace(stage[len("head "):]))
			if perr != nil {
				return nil, nil, fmt.Errorf("splunk: bad head count in %q", stage)
			}
			if n < len(rows) {
				rows = rows[:n]
			}
		default:
			return nil, nil, fmt.Errorf("splunk: unknown pipeline stage %q", stage)
		}
		if err != nil {
			return nil, nil, err
		}
	}
	return cols, rows, nil
}

// runSearch evaluates "index=NAME [cond ...]".
func (e *Engine) runSearch(clause string) ([]string, [][]any, error) {
	terms := strings.Fields(clause)
	if len(terms) == 0 || !strings.HasPrefix(terms[0], "index=") {
		return nil, nil, fmt.Errorf("splunk: search must name an index, got %q", clause)
	}
	name := strings.TrimPrefix(terms[0], "index=")
	e.mu.Lock()
	idx, ok := e.indexes[strings.ToLower(name)]
	e.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("splunk: unknown index %q", name)
	}
	cols := make([]string, len(idx.Fields))
	colPos := map[string]int{}
	for i, f := range idx.Fields {
		cols[i] = f.Name
		colPos[strings.ToLower(f.Name)] = i
	}
	type cond struct {
		col int
		op  string
		val any
	}
	var conds []cond
	for _, term := range terms[1:] {
		c, op, v, err := splitCond(term)
		if err != nil {
			return nil, nil, err
		}
		pos, ok := colPos[strings.ToLower(c)]
		if !ok {
			return nil, nil, fmt.Errorf("splunk: unknown field %q in index %q", c, name)
		}
		conds = append(conds, cond{col: pos, op: op, val: v})
	}
	var out [][]any
	for _, ev := range idx.Events {
		keep := true
		for _, c := range conds {
			cmp := types.Compare(ev[c.col], c.val)
			switch c.op {
			case "=":
				keep = ev[c.col] != nil && cmp == 0
			case "!=":
				keep = ev[c.col] != nil && cmp != 0
			case ">":
				keep = ev[c.col] != nil && cmp > 0
			case ">=":
				keep = ev[c.col] != nil && cmp >= 0
			case "<":
				keep = ev[c.col] != nil && cmp < 0
			case "<=":
				keep = ev[c.col] != nil && cmp <= 0
			}
			if !keep {
				break
			}
		}
		if keep {
			out = append(out, ev)
		}
	}
	return cols, out, nil
}

// splitCond splits "field>=value" into parts.
func splitCond(term string) (string, string, any, error) {
	for _, op := range []string{">=", "<=", "!=", "=", ">", "<"} {
		if i := strings.Index(term, op); i > 0 {
			field := term[:i]
			raw := term[i+len(op):]
			return field, op, parseSPLValue(raw), nil
		}
	}
	return "", "", nil, fmt.Errorf("splunk: cannot parse condition %q", term)
}

func parseSPLValue(raw string) any {
	if strings.HasPrefix(raw, `"`) && strings.HasSuffix(raw, `"`) && len(raw) >= 2 {
		return raw[1 : len(raw)-1]
	}
	if i, err := strconv.ParseInt(raw, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(raw, 64); err == nil {
		return f
	}
	return raw
}

func applyFields(spec string, cols []string, rows [][]any) ([]string, [][]any, error) {
	var keep []int
	var outCols []string
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		found := -1
		for i, c := range cols {
			if strings.EqualFold(c, f) {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, nil, fmt.Errorf("splunk: fields: unknown field %q", f)
		}
		keep = append(keep, found)
		outCols = append(outCols, cols[found])
	}
	out := make([][]any, len(rows))
	for ri, row := range rows {
		nr := make([]any, len(keep))
		for i, k := range keep {
			nr[i] = row[k]
		}
		out[ri] = nr
	}
	return outCols, out, nil
}

// applyLookup evaluates "table remoteKey=localField output col1,col2":
// for each row, look the local field's value up in the external table and
// append the requested remote columns (inner semantics: rows without a
// match are dropped, implementing the pushed-down join of Figure 2).
func applyLookup(spec string, cols []string, rows [][]any, lookup LookupFunc) ([]string, [][]any, error) {
	parts := strings.Fields(spec)
	if len(parts) < 4 || !strings.EqualFold(parts[2], "output") {
		return nil, nil, fmt.Errorf("splunk: lookup syntax: 'lookup <table> <remoteKey>=<localField> output <cols>', got %q", spec)
	}
	table := parts[0]
	kv := strings.SplitN(parts[1], "=", 2)
	if len(kv) != 2 {
		return nil, nil, fmt.Errorf("splunk: lookup key spec %q", parts[1])
	}
	remoteKey, localField := kv[0], kv[1]
	localPos := -1
	for i, c := range cols {
		if strings.EqualFold(c, localField) {
			localPos = i
			break
		}
	}
	if localPos < 0 {
		return nil, nil, fmt.Errorf("splunk: lookup local field %q not found", localField)
	}
	wanted := strings.Split(strings.Join(parts[3:], ""), ",")

	var out [][]any
	outCols := append(append([]string{}, cols...), wanted...)
	// Real Splunk caches lookup tables; cache per distinct key here so a
	// repeated key costs one external call.
	type cached struct {
		cols []string
		rows [][]any
	}
	lookupCache := map[string]cached{}
	for _, row := range rows {
		ck := fmt.Sprint(row[localPos])
		hit, ok := lookupCache[ck]
		if !ok {
			rcols2, rrows2, err := lookup(table, remoteKey, row[localPos])
			if err != nil {
				return nil, nil, err
			}
			hit = cached{cols: rcols2, rows: rrows2}
			lookupCache[ck] = hit
		}
		rcols, rrows := hit.cols, hit.rows
		for _, rrow := range rrows {
			merged := append(append([]any{}, row...), make([]any, len(wanted))...)
			for wi, w := range wanted {
				for ci, rc := range rcols {
					if strings.EqualFold(rc, strings.TrimSpace(w)) {
						merged[len(cols)+wi] = rrow[ci]
						break
					}
				}
			}
			out = append(out, merged)
		}
	}
	return outCols, out, nil
}
