package csvfile

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"calcite/internal/schema"
	"calcite/internal/types"
)

func writeCSV(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadTableTypedRoundTrip: header-declared types parse into the runtime
// representation, empty cells become NULL, and a scan returns the rows.
func TestLoadTableTypedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "people.csv",
		"id:int,name,score:double,active:bool,seen:timestamp\n"+
			"1,alice,9.5,true,2020-01-02 03:04:05\n"+
			"2,bob,,false,\n")
	tb, err := LoadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Name() != "people" {
		t.Fatalf("table name: %q", tb.Name())
	}
	fields := tb.RowType().Fields
	wantKinds := []types.Kind{types.BigIntKind, types.VarcharKind, types.DoubleKind, types.BooleanKind, types.TimestampKind}
	for i, k := range wantKinds {
		if fields[i].Type.Kind != k {
			t.Errorf("col %d kind %v want %v", i, fields[i].Type.Kind, k)
		}
		if !fields[i].Type.Nullable {
			t.Errorf("col %d should be nullable", i)
		}
	}
	seen, _ := types.ParseTimestampMillis("2020-01-02 03:04:05")
	want := [][]any{
		{int64(1), "alice", 9.5, true, seen},
		{int64(2), "bob", nil, false, nil},
	}
	cur, err := tb.Scan()
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]any
	for {
		row, err := cur.Next()
		if err == schema.Done {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("rows: %v want %v", rows, want)
	}
	// Loaded tables feed the vectorized path directly.
	bc, err := tb.ScanBatches(16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bc.NextBatch()
	if err != nil || b.NumRows() != 2 || b.Cols[0][1] != int64(2) {
		t.Fatalf("batch scan: %v %v", b, err)
	}
}

// TestLoadDirectory: every .csv in the directory becomes a table of the
// schema; non-CSV entries are ignored.
func TestLoadDirectory(t *testing.T) {
	dir := t.TempDir()
	writeCSV(t, dir, "a.csv", "x:int\n1\n")
	writeCSV(t, dir, "b.csv", "y\nhello\n")
	writeCSV(t, dir, "notes.txt", "ignored")
	a, err := Load("csv", dir)
	if err != nil {
		t.Fatal(err)
	}
	s := a.AdapterSchema()
	if got := s.TableNames(); len(got) != 2 {
		t.Fatalf("tables: %v", got)
	}
	if _, ok := s.Table("a"); !ok {
		t.Fatal("table a missing")
	}
	if _, ok := s.Table("notes"); ok {
		t.Fatal("non-CSV file became a table")
	}
}

// TestLoadErrors: unknown types, ragged rows and bad cells are reported
// with file context.
func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	bad := writeCSV(t, dir, "bad.csv", "x:widget\n1\n")
	if _, err := LoadTable(bad); err == nil || !strings.Contains(err.Error(), "widget") {
		t.Fatalf("unknown type: %v", err)
	}
	// A cell that fails coercion names the line and column. (Ragged rows are
	// rejected by the csv reader itself.)
	badCell := writeCSV(t, dir, "badcell.csv", "x:int\nnope\n")
	if _, err := LoadTable(badCell); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("bad cell: %v", err)
	}
	if _, err := LoadTable(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file should error")
	}
	empty := writeCSV(t, dir, "empty.csv", "")
	if _, err := LoadTable(empty); err == nil {
		t.Fatal("empty file should error")
	}
	if _, err := Load("csv", filepath.Join(dir, "nodir")); err == nil {
		t.Fatal("missing directory should error")
	}
}
