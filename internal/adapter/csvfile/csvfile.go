// Package csvfile is the CSV file adapter — the canonical Calcite tutorial
// adapter and this reproduction's quickstart backend. A directory of .csv
// files becomes a schema; each file becomes a table. Column types come from
// header cells of the form "name:type" (type defaults to varchar).
//
// Following Figure 3, the adapter consists of a model (the directory path),
// a schema factory (Load), and a schema of tables. Loaded tables are
// schema.MemTable values and therefore batch-scannable: queries over CSV
// data run on the vectorized execution path by default.
package csvfile

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"calcite/internal/core"
	"calcite/internal/plan"
	"calcite/internal/schema"
	"calcite/internal/types"
)

// Adapter exposes a directory of CSV files as a schema.
type Adapter struct {
	schema *schema.BaseSchema
}

// Load reads every .csv file of dir into an adapter schema named name.
func Load(name, dir string) (*Adapter, error) {
	s := schema.NewBaseSchema(name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("csvfile: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		t, err := LoadTable(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		s.AddTable(t)
	}
	return &Adapter{schema: s}, nil
}

// LoadTable reads one CSV file into an in-memory table.
func LoadTable(path string) (*schema.MemTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("csvfile: %v", err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	records, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("csvfile: reading %s: %v", path, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("csvfile: %s has no header", path)
	}
	fields, parsers, err := parseHeader(records[0])
	if err != nil {
		return nil, fmt.Errorf("csvfile: %s: %v", path, err)
	}
	rows := make([][]any, 0, len(records)-1)
	for li, rec := range records[1:] {
		if len(rec) != len(fields) {
			return nil, fmt.Errorf("csvfile: %s line %d has %d cells, want %d", path, li+2, len(rec), len(fields))
		}
		row := make([]any, len(rec))
		for i, cell := range rec {
			v, err := parsers[i](cell)
			if err != nil {
				return nil, fmt.Errorf("csvfile: %s line %d col %s: %v", path, li+2, fields[i].Name, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	name := strings.TrimSuffix(filepath.Base(path), ".csv")
	return schema.NewMemTable(name, types.Row(fields...), rows), nil
}

type cellParser func(string) (any, error)

func parseHeader(header []string) ([]types.Field, []cellParser, error) {
	fields := make([]types.Field, len(header))
	parsers := make([]cellParser, len(header))
	for i, h := range header {
		name, typeName := h, "varchar"
		if idx := strings.IndexByte(h, ':'); idx >= 0 {
			name, typeName = h[:idx], strings.ToLower(h[idx+1:])
		}
		var t *types.Type
		var p cellParser
		switch typeName {
		case "int", "bigint", "long", "integer":
			t = types.BigInt
			p = func(s string) (any, error) {
				if s == "" {
					return nil, nil
				}
				return strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			}
		case "double", "float", "decimal":
			t = types.Double
			p = func(s string) (any, error) {
				if s == "" {
					return nil, nil
				}
				return strconv.ParseFloat(strings.TrimSpace(s), 64)
			}
		case "boolean", "bool":
			t = types.Boolean
			p = func(s string) (any, error) {
				if s == "" {
					return nil, nil
				}
				return strconv.ParseBool(strings.TrimSpace(s))
			}
		case "timestamp":
			t = types.Timestamp
			p = func(s string) (any, error) {
				if s == "" {
					return nil, nil
				}
				return types.ParseTimestampMillis(strings.TrimSpace(s))
			}
		case "varchar", "string", "char":
			t = types.Varchar
			p = func(s string) (any, error) { return s, nil }
		default:
			return nil, nil, fmt.Errorf("unknown column type %q", typeName)
		}
		fields[i] = types.Field{Name: name, Type: t.WithNullable(true)}
		parsers[i] = p
	}
	return fields, parsers, nil
}

// AdapterSchema implements core.Adapter.
func (a *Adapter) AdapterSchema() schema.Schema { return a.schema }

// Rules implements core.Adapter. CSV files support no pushdown; everything
// runs in the enumerable convention.
func (a *Adapter) Rules() []plan.Rule { return nil }

// Converters implements core.Adapter.
func (a *Adapter) Converters() []core.ConverterReg { return nil }
