package rex

import (
	"fmt"
	"math"
	"strings"

	"calcite/internal/geo"
	"calcite/internal/types"
)

// OpKind classifies operators for unparsing and rule matching.
type OpKind int

const (
	KindBinary   OpKind = iota // infix binary, e.g. =, +, AND
	KindPrefix                 // prefix unary, e.g. NOT, -
	KindPostfix                // postfix unary, e.g. IS NULL
	KindFunction               // ordinary function call syntax
	KindSpecial                // CASE, CAST, ITEM, ...
)

// Operator describes a scalar operator or function. Operators are singletons
// compared by pointer; adapters and extensions may register additional
// operators with RegisterFunction.
type Operator struct {
	Name string
	Kind OpKind
	// Sym is the infix/prefix symbol used for SQL unparsing ("=", "+").
	// Empty means use Name.
	Sym string
	// infer computes the result type from operand expressions.
	infer func(args []Node) *types.Type
	// eval computes the result from evaluated operand values. Operators
	// with non-strict semantics (AND/OR/CASE/COALESCE) are special-cased in
	// the evaluator and leave eval nil.
	eval func(args []any) (any, error)
	// NullSafe, when true, lets eval see NULL arguments; otherwise any NULL
	// argument yields NULL without calling eval (SQL strictness).
	NullSafe bool
}

func (o *Operator) Symbol() string {
	if o.Sym != "" {
		return o.Sym
	}
	return o.Name
}

func inferBool(args []Node) *types.Type {
	nullable := false
	for _, a := range args {
		if a.Type() != nil && a.Type().Nullable {
			nullable = true
		}
	}
	return types.Boolean.WithNullable(nullable)
}

func inferFirst(args []Node) *types.Type {
	if len(args) == 0 {
		return types.Any
	}
	return args[0].Type()
}

func inferLeastRestrictive(args []Node) *types.Type {
	if len(args) == 0 {
		return types.Any
	}
	t := args[0].Type()
	for _, a := range args[1:] {
		if lt := types.LeastRestrictive(t, a.Type()); lt != nil {
			t = lt
		}
	}
	return t
}

func inferArith(args []Node) *types.Type {
	t := inferLeastRestrictive(args)
	if t == nil || !t.Kind.IsNumeric() && !t.Kind.IsDatetime() && t.Kind != types.IntervalKind {
		return types.Double.WithNullable(t != nil && t.Nullable)
	}
	return t
}

func constType(t *types.Type) func([]Node) *types.Type {
	return func(args []Node) *types.Type {
		nullable := false
		for _, a := range args {
			if a.Type() != nil && a.Type().Nullable {
				nullable = true
			}
		}
		return t.WithNullable(nullable)
	}
}

func numeric2(f func(x, y float64) (any, error)) func([]any) (any, error) {
	return func(args []any) (any, error) {
		x, ok1 := types.AsFloat(args[0])
		y, ok2 := types.AsFloat(args[1])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("rex: non-numeric operands %T, %T", args[0], args[1])
		}
		return f(x, y)
	}
}

// bothInts reports whether both runtime values are integers.
func bothInts(a, b any) (int64, int64, bool) {
	x, ok1 := a.(int64)
	y, ok2 := b.(int64)
	if ok1 && ok2 {
		return x, y, true
	}
	return 0, 0, false
}

func cmpOp(name, sym string, pred func(c int) bool) *Operator {
	return &Operator{
		Name: name, Kind: KindBinary, Sym: sym,
		infer: inferBool,
		eval: func(args []any) (any, error) {
			return pred(types.Compare(args[0], args[1])), nil
		},
	}
}

// The built-in operator table.
var (
	OpAnd = &Operator{Name: "AND", Kind: KindBinary, infer: inferBool}
	OpOr  = &Operator{Name: "OR", Kind: KindBinary, infer: inferBool}
	OpNot = &Operator{
		Name: "NOT", Kind: KindPrefix, infer: inferBool,
		eval: func(args []any) (any, error) {
			b, ok := args[0].(bool)
			if !ok {
				return nil, fmt.Errorf("rex: NOT applied to %T", args[0])
			}
			return !b, nil
		},
	}

	OpEquals       = cmpOp("=", "=", func(c int) bool { return c == 0 })
	OpNotEquals    = cmpOp("<>", "<>", func(c int) bool { return c != 0 })
	OpLess         = cmpOp("<", "<", func(c int) bool { return c < 0 })
	OpLessEqual    = cmpOp("<=", "<=", func(c int) bool { return c <= 0 })
	OpGreater      = cmpOp(">", ">", func(c int) bool { return c > 0 })
	OpGreaterEqual = cmpOp(">=", ">=", func(c int) bool { return c >= 0 })

	OpPlus = &Operator{
		Name: "+", Kind: KindBinary, Sym: "+", infer: inferArith,
		eval: func(args []any) (any, error) {
			if x, y, ok := bothInts(args[0], args[1]); ok {
				return x + y, nil
			}
			return numeric2(func(x, y float64) (any, error) { return x + y, nil })(args)
		},
	}
	OpMinus = &Operator{
		Name: "-", Kind: KindBinary, Sym: "-", infer: inferArith,
		eval: func(args []any) (any, error) {
			if x, y, ok := bothInts(args[0], args[1]); ok {
				return x - y, nil
			}
			return numeric2(func(x, y float64) (any, error) { return x - y, nil })(args)
		},
	}
	OpTimes = &Operator{
		Name: "*", Kind: KindBinary, Sym: "*", infer: inferArith,
		eval: func(args []any) (any, error) {
			if x, y, ok := bothInts(args[0], args[1]); ok {
				return x * y, nil
			}
			return numeric2(func(x, y float64) (any, error) { return x * y, nil })(args)
		},
	}
	OpDivide = &Operator{
		Name: "/", Kind: KindBinary, Sym: "/", infer: inferArith,
		eval: func(args []any) (any, error) {
			if x, y, ok := bothInts(args[0], args[1]); ok {
				if y == 0 {
					return nil, fmt.Errorf("rex: division by zero")
				}
				return x / y, nil
			}
			return numeric2(func(x, y float64) (any, error) {
				if y == 0 {
					return nil, fmt.Errorf("rex: division by zero")
				}
				return x / y, nil
			})(args)
		},
	}
	OpMod = &Operator{
		Name: "MOD", Kind: KindFunction, infer: inferArith,
		eval: func(args []any) (any, error) {
			x, ok1 := types.AsInt(args[0])
			y, ok2 := types.AsInt(args[1])
			if !ok1 || !ok2 || y == 0 {
				return nil, fmt.Errorf("rex: bad MOD operands")
			}
			return x % y, nil
		},
	}
	OpUnaryMinus = &Operator{
		Name: "-", Kind: KindPrefix, Sym: "-", infer: inferFirst,
		eval: func(args []any) (any, error) {
			switch x := args[0].(type) {
			case int64:
				return -x, nil
			case float64:
				return -x, nil
			}
			return nil, fmt.Errorf("rex: unary minus on %T", args[0])
		},
	}

	OpIsNull = &Operator{
		Name: "IS NULL", Kind: KindPostfix, infer: constType(types.Boolean),
		NullSafe: true,
		eval:     func(args []any) (any, error) { return args[0] == nil, nil },
	}
	OpIsNotNull = &Operator{
		Name: "IS NOT NULL", Kind: KindPostfix, infer: constType(types.Boolean),
		NullSafe: true,
		eval:     func(args []any) (any, error) { return args[0] != nil, nil },
	}

	// OpCase is searched CASE: operands are [when1, then1, when2, then2, ...,
	// else]. Lazily evaluated.
	OpCase = &Operator{Name: "CASE", Kind: KindSpecial, infer: func(args []Node) *types.Type {
		if len(args) == 0 {
			return types.Any
		}
		var t *types.Type
		for i := 1; i < len(args); i += 2 {
			if t == nil {
				t = args[i].Type()
			} else if lt := types.LeastRestrictive(t, args[i].Type()); lt != nil {
				t = lt
			}
		}
		if len(args)%2 == 1 {
			if lt := types.LeastRestrictive(t, args[len(args)-1].Type()); lt != nil {
				t = lt
			}
		}
		if t == nil {
			t = types.Any
		}
		return t.WithNullable(true)
	}}

	// OpCast's result type is carried on the Call (NewCallTyped).
	OpCast = &Operator{Name: "CAST", Kind: KindSpecial, infer: inferFirst}

	OpCoalesce = &Operator{Name: "COALESCE", Kind: KindFunction, infer: inferLeastRestrictive}

	// OpItem is the '[]' operator of §7.1 for ARRAY (1-based index) and MAP
	// (key lookup) access.
	OpItem = &Operator{
		Name: "ITEM", Kind: KindSpecial,
		infer: func(args []Node) *types.Type {
			t := args[0].Type()
			if t != nil && t.Elem != nil {
				return t.Elem.WithNullable(true)
			}
			return types.Any
		},
		eval: func(args []any) (any, error) {
			switch c := args[0].(type) {
			case []any:
				i, ok := types.AsInt(args[1])
				if !ok {
					return nil, fmt.Errorf("rex: non-integer array index %T", args[1])
				}
				// ARRAY access in the paper's zips example is 0-based
				// ( _MAP['loc'][0] ), matching Calcite's ITEM on JSON data.
				if i < 0 || int(i) >= len(c) {
					return nil, nil
				}
				return c[i], nil
			case map[string]any:
				k, ok := args[1].(string)
				if !ok {
					k = types.FormatValue(args[1])
				}
				v, ok := c[k]
				if !ok {
					return nil, nil
				}
				return v, nil
			}
			return nil, fmt.Errorf("rex: ITEM on %T", args[0])
		},
	}

	OpLike = &Operator{
		Name: "LIKE", Kind: KindBinary, infer: inferBool,
		eval: func(args []any) (any, error) {
			s, ok1 := args[0].(string)
			p, ok2 := args[1].(string)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("rex: LIKE on %T, %T", args[0], args[1])
			}
			return likeMatch(s, p), nil
		},
	}

	OpConcat = &Operator{
		Name: "||", Kind: KindBinary, Sym: "||", infer: constType(types.Varchar),
		eval: func(args []any) (any, error) {
			return types.FormatValue(args[0]) + types.FormatValue(args[1]), nil
		},
	}
)

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(s, pattern string) bool {
	var match func(si, pi int) bool
	match = func(si, pi int) bool {
		for pi < len(pattern) {
			switch pattern[pi] {
			case '%':
				for k := si; k <= len(s); k++ {
					if match(k, pi+1) {
						return true
					}
				}
				return false
			case '_':
				if si >= len(s) {
					return false
				}
				si++
				pi++
			default:
				if si >= len(s) || s[si] != pattern[pi] {
					return false
				}
				si++
				pi++
			}
		}
		return si == len(s)
	}
	return match(0, 0)
}

func fn(name string, t *types.Type, eval func([]any) (any, error)) *Operator {
	return &Operator{Name: name, Kind: KindFunction, infer: constType(t), eval: eval}
}

func str1(name string, f func(string) any) *Operator {
	return fn(name, types.Varchar, func(args []any) (any, error) {
		s, ok := args[0].(string)
		if !ok {
			s = types.FormatValue(args[0])
		}
		return f(s), nil
	})
}

func geom(v any) (*geo.Geometry, error) {
	g, ok := v.(*geo.Geometry)
	if !ok {
		return nil, fmt.Errorf("rex: expected GEOMETRY, got %T", v)
	}
	return g, nil
}

// registry holds functions looked up by the SQL parser/validator by name.
var registry = map[string]*Operator{}

// RegisterFunction adds a function operator to the global lookup table used
// by the SQL layer. It is how extensions (geospatial, streaming, adapters)
// plug new functions into the framework.
func RegisterFunction(op *Operator) {
	registry[strings.ToUpper(op.Name)] = op
}

// LookupFunction finds a registered function by (case-insensitive) name.
func LookupFunction(name string) (*Operator, bool) {
	op, ok := registry[strings.ToUpper(name)]
	return op, ok
}

// Additional built-in scalar functions.
var (
	OpUpper      = str1("UPPER", func(s string) any { return strings.ToUpper(s) })
	OpLower      = str1("LOWER", func(s string) any { return strings.ToLower(s) })
	OpTrim       = str1("TRIM", func(s string) any { return strings.TrimSpace(s) })
	OpCharLength = &Operator{
		Name: "CHAR_LENGTH", Kind: KindFunction, infer: constType(types.Integer),
		eval: func(args []any) (any, error) {
			s, ok := args[0].(string)
			if !ok {
				return nil, fmt.Errorf("rex: CHAR_LENGTH on %T", args[0])
			}
			return int64(len(s)), nil
		},
	}
	OpSubstring = &Operator{
		Name: "SUBSTRING", Kind: KindFunction, infer: constType(types.Varchar),
		eval: func(args []any) (any, error) {
			s, ok := args[0].(string)
			if !ok {
				return nil, fmt.Errorf("rex: SUBSTRING on %T", args[0])
			}
			from, _ := types.AsInt(args[1])
			start := int(from) - 1
			if start < 0 {
				start = 0
			}
			if start > len(s) {
				start = len(s)
			}
			end := len(s)
			if len(args) > 2 {
				n, _ := types.AsInt(args[2])
				if e := start + int(n); e < end {
					end = e
				}
			}
			if end < start {
				end = start
			}
			return s[start:end], nil
		},
	}
	OpAbs = &Operator{
		Name: "ABS", Kind: KindFunction, infer: inferFirst,
		eval: func(args []any) (any, error) {
			switch x := args[0].(type) {
			case int64:
				if x < 0 {
					return -x, nil
				}
				return x, nil
			case float64:
				return math.Abs(x), nil
			}
			return nil, fmt.Errorf("rex: ABS on %T", args[0])
		},
	}
	OpFloor = fn("FLOOR", types.BigInt, func(args []any) (any, error) {
		f, ok := types.AsFloat(args[0])
		if !ok {
			return nil, fmt.Errorf("rex: FLOOR on %T", args[0])
		}
		return int64(math.Floor(f)), nil
	})
	OpCeil = fn("CEIL", types.BigInt, func(args []any) (any, error) {
		f, ok := types.AsFloat(args[0])
		if !ok {
			return nil, fmt.Errorf("rex: CEIL on %T", args[0])
		}
		return int64(math.Ceil(f)), nil
	})
	OpPower = fn("POWER", types.Double, numeric2(func(x, y float64) (any, error) { return math.Pow(x, y), nil }))
	OpSqrt  = fn("SQRT", types.Double, func(args []any) (any, error) {
		f, ok := types.AsFloat(args[0])
		if !ok {
			return nil, fmt.Errorf("rex: SQRT on %T", args[0])
		}
		return math.Sqrt(f), nil
	})

	// Geospatial functions (§7.3).
	OpSTGeomFromText = &Operator{
		Name: "ST_GEOMFROMTEXT", Kind: KindFunction, infer: constType(types.Geometry),
		eval: func(args []any) (any, error) {
			s, ok := args[0].(string)
			if !ok {
				return nil, fmt.Errorf("rex: ST_GeomFromText on %T", args[0])
			}
			return geo.FromText(s)
		},
	}
	OpSTContains = fn("ST_CONTAINS", types.Boolean, func(args []any) (any, error) {
		a, err := geom(args[0])
		if err != nil {
			return nil, err
		}
		b, err := geom(args[1])
		if err != nil {
			return nil, err
		}
		return geo.Contains(a, b), nil
	})
	OpSTIntersects = fn("ST_INTERSECTS", types.Boolean, func(args []any) (any, error) {
		a, err := geom(args[0])
		if err != nil {
			return nil, err
		}
		b, err := geom(args[1])
		if err != nil {
			return nil, err
		}
		return geo.Intersects(a, b), nil
	})
	OpSTDistance = fn("ST_DISTANCE", types.Double, func(args []any) (any, error) {
		a, err := geom(args[0])
		if err != nil {
			return nil, err
		}
		b, err := geom(args[1])
		if err != nil {
			return nil, err
		}
		return geo.Distance(a, b), nil
	})
	OpSTPoint = fn("ST_POINT", types.Geometry, numeric2(func(x, y float64) (any, error) {
		return geo.NewPoint(x, y), nil
	}))
	OpSTArea = fn("ST_AREA", types.Double, func(args []any) (any, error) {
		g, err := geom(args[0])
		if err != nil {
			return nil, err
		}
		return geo.Area(g), nil
	})
	OpSTEnvelope = fn("ST_ENVELOPE", types.Geometry, func(args []any) (any, error) {
		g, err := geom(args[0])
		if err != nil {
			return nil, err
		}
		return geo.Envelope(g), nil
	})

	// Group-window functions (§7.2). TUMBLE/HOP/SESSION are placeholders
	// recognized by the streaming planner; the _END/_START companions are
	// evaluated against the window-assigned timestamp.
	OpTumble       = &Operator{Name: "TUMBLE", Kind: KindFunction, infer: constType(types.Timestamp)}
	OpHop          = &Operator{Name: "HOP", Kind: KindFunction, infer: constType(types.Timestamp)}
	OpSession      = &Operator{Name: "SESSION", Kind: KindFunction, infer: constType(types.Timestamp)}
	OpTumbleStart  = &Operator{Name: "TUMBLE_START", Kind: KindFunction, infer: constType(types.Timestamp)}
	OpTumbleEnd    = &Operator{Name: "TUMBLE_END", Kind: KindFunction, infer: constType(types.Timestamp)}
	OpHopStart     = &Operator{Name: "HOP_START", Kind: KindFunction, infer: constType(types.Timestamp)}
	OpHopEnd       = &Operator{Name: "HOP_END", Kind: KindFunction, infer: constType(types.Timestamp)}
	OpSessionStart = &Operator{Name: "SESSION_START", Kind: KindFunction, infer: constType(types.Timestamp)}
	OpSessionEnd   = &Operator{Name: "SESSION_END", Kind: KindFunction, infer: constType(types.Timestamp)}
)

func init() {
	for _, op := range []*Operator{
		OpMod, OpCoalesce, OpUpper, OpLower, OpTrim, OpCharLength, OpSubstring,
		OpAbs, OpFloor, OpCeil, OpPower, OpSqrt,
		OpSTGeomFromText, OpSTContains, OpSTIntersects, OpSTDistance,
		OpSTPoint, OpSTArea, OpSTEnvelope,
		OpTumble, OpHop, OpSession,
		OpTumbleStart, OpTumbleEnd, OpHopStart, OpHopEnd, OpSessionStart, OpSessionEnd,
	} {
		RegisterFunction(op)
	}
}

// Negate returns the complement comparison operator, or nil if op is not a
// comparison (used by rules that push NOT through comparisons).
func Negate(op *Operator) *Operator {
	switch op {
	case OpEquals:
		return OpNotEquals
	case OpNotEquals:
		return OpEquals
	case OpLess:
		return OpGreaterEqual
	case OpLessEqual:
		return OpGreater
	case OpGreater:
		return OpLessEqual
	case OpGreaterEqual:
		return OpLess
	}
	return nil
}

// Mirror returns the comparison with swapped operands preserved semantics
// (a < b  ==  b > a), or nil.
func Mirror(op *Operator) *Operator {
	switch op {
	case OpEquals, OpNotEquals:
		return op
	case OpLess:
		return OpGreater
	case OpLessEqual:
		return OpGreaterEqual
	case OpGreater:
		return OpLess
	case OpGreaterEqual:
		return OpLessEqual
	}
	return nil
}
