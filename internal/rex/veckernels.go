package rex

// Vector kernels: monomorphic loops over typed columnar storage
// (schema.Vector). Where kernels.go removes the per-row closure dispatch but
// still pays an interface load and a type assertion per boxed value, a
// vector kernel reads machine-typed slices directly — the compiler emits a
// tight compare/arith loop with the null branch hoisted when the column has
// no NULL mask.
//
// Vector kernels are best-effort twice over: FilterKernelVec/ArithKernelVec
// return ok=false at compile time for unrecognized shapes, and the compiled
// kernel itself reports ok=false at run time when a batch's vectors do not
// carry the expected kinds (mixed-type columns degrade to VecAny). Callers
// hold both the vector kernel and the boxed fallback and pick per batch.

import (
	"cmp"
	"fmt"

	"calcite/internal/schema"
)

// VecSelKernel narrows a selection over typed vectors: it appends to out the
// indices of sel whose rows satisfy the predicate. ok=false means the
// batch's vector kinds do not match the compiled shape and the caller must
// use its boxed fallback. NULL comparisons drop rows (SQL filter semantics).
type VecSelKernel func(vecs []*schema.Vector, sel []int32, out []int32) ([]int32, bool)

// FilterKernelVec compiles a predicate into a typed selection kernel for the
// same hot shapes FilterKernel recognizes: column ⋈ literal, column ⋈
// column, IS [NOT] NULL, and ANDs thereof, over int64/float64/string
// columns.
func FilterKernelVec(n Node) (VecSelKernel, bool) {
	c, ok := n.(*Call)
	if !ok {
		return nil, false
	}
	if c.Op == OpAnd {
		kernels := make([]VecSelKernel, len(c.Operands))
		for i, o := range c.Operands {
			k, ok := FilterKernelVec(o)
			if !ok {
				return nil, false
			}
			kernels[i] = k
		}
		var bufs [2][]int32
		return func(vecs []*schema.Vector, sel []int32, out []int32) ([]int32, bool) {
			cur := sel
			for i, k := range kernels {
				dst := out
				if i < len(kernels)-1 {
					dst = bufs[i%2][:0]
				}
				next, ok := k(vecs, cur, dst)
				if !ok {
					return nil, false
				}
				if i == len(kernels)-1 {
					return next, true
				}
				bufs[i%2] = next
				cur = next
				if len(cur) == 0 {
					return out, true
				}
			}
			return out, true
		}, true
	}

	switch c.Op {
	case OpIsNull:
		if ref, ok := c.Operands[0].(*InputRef); ok {
			i := ref.Index
			return func(vecs []*schema.Vector, sel []int32, out []int32) ([]int32, bool) {
				v := vecs[i]
				if v.Kind == schema.VecAny {
					return nil, false
				}
				if v.Nulls == nil {
					return out, true
				}
				nulls := v.Nulls
				for _, r := range sel {
					if nulls[r] {
						out = append(out, r)
					}
				}
				return out, true
			}, true
		}
	case OpIsNotNull:
		if ref, ok := c.Operands[0].(*InputRef); ok {
			i := ref.Index
			return func(vecs []*schema.Vector, sel []int32, out []int32) ([]int32, bool) {
				v := vecs[i]
				if v.Kind == schema.VecAny {
					return nil, false
				}
				if v.Nulls == nil {
					return append(out, sel...), true
				}
				nulls := v.Nulls
				for _, r := range sel {
					if !nulls[r] {
						out = append(out, r)
					}
				}
				return out, true
			}, true
		}
	}

	pred := cmpPred(c.Op)
	if pred == nil || len(c.Operands) != 2 {
		return nil, false
	}
	// column ⋈ column
	if lref, ok := c.Operands[0].(*InputRef); ok {
		if rref, ok := c.Operands[1].(*InputRef); ok {
			li, ri := lref.Index, rref.Index
			return func(vecs []*schema.Vector, sel []int32, out []int32) ([]int32, bool) {
				lv, rv := vecs[li], vecs[ri]
				if lv.Kind != rv.Kind {
					return nil, false
				}
				switch lv.Kind {
				case schema.VecInt64:
					return selColCol(lv.I64, rv.I64, lv.Nulls, rv.Nulls, sel, out, pred), true
				case schema.VecFloat64:
					return selColCol(lv.F64, rv.F64, lv.Nulls, rv.Nulls, sel, out, pred), true
				case schema.VecString:
					return selColCol(lv.S, rv.S, lv.Nulls, rv.Nulls, sel, out, pred), true
				}
				return nil, false
			}, true
		}
	}
	// column ⋈ literal  /  literal ⋈ column (mirrored predicate)
	if ref, ok := c.Operands[0].(*InputRef); ok {
		if lit, ok := c.Operands[1].(*Literal); ok {
			return cmpLiteralKernelVec(ref.Index, lit.Value, pred)
		}
	}
	if lit, ok := c.Operands[0].(*Literal); ok {
		if ref, ok := c.Operands[1].(*InputRef); ok {
			mirrored := func(cmp int) bool { return pred(-cmp) }
			return cmpLiteralKernelVec(ref.Index, lit.Value, mirrored)
		}
	}
	return nil, false
}

// selColLit appends the sel indices where data[r] ⋈ k holds, the monomorphic
// core loop shared by every column-vs-literal comparison kernel.
func selColLit[T cmp.Ordered](data []T, nulls []bool, k T, sel, out []int32, pred func(int) bool) []int32 {
	// Specialize the three one-sided predicates a comparison can compile to,
	// so the common shapes ($i > k, $i = k, ...) run without calling pred.
	lt, eq, gt := pred(-1), pred(0), pred(1)
	if nulls == nil {
		for _, r := range sel {
			v := data[r]
			if (v < k && lt) || (v == k && eq) || (v > k && gt) {
				out = append(out, r)
			}
		}
		return out
	}
	for _, r := range sel {
		if nulls[r] {
			continue
		}
		v := data[r]
		if (v < k && lt) || (v == k && eq) || (v > k && gt) {
			out = append(out, r)
		}
	}
	return out
}

// selColCol is selColLit for column ⋈ column.
func selColCol[T cmp.Ordered](l, r []T, ln, rn []bool, sel, out []int32, pred func(int) bool) []int32 {
	lt, eq, gt := pred(-1), pred(0), pred(1)
	for _, i := range sel {
		if (ln != nil && ln[i]) || (rn != nil && rn[i]) {
			continue
		}
		a, b := l[i], r[i]
		if (a < b && lt) || (a == b && eq) || (a > b && gt) {
			out = append(out, i)
		}
	}
	return out
}

// cmpLiteralKernelVec builds a typed column-vs-constant selection kernel.
// Cross-type numeric comparisons (int64 column vs float literal and vice
// versa) compare in float64, matching types.Compare.
func cmpLiteralKernelVec(idx int, lit any, pred func(int) bool) (VecSelKernel, bool) {
	switch k := lit.(type) {
	case nil:
		// ⋈ NULL is never true: the kernel selects nothing.
		return func(vecs []*schema.Vector, sel []int32, out []int32) ([]int32, bool) {
			return out, true
		}, true
	case int64:
		return func(vecs []*schema.Vector, sel []int32, out []int32) ([]int32, bool) {
			switch v := vecs[idx]; v.Kind {
			case schema.VecInt64:
				return selColLit(v.I64, v.Nulls, k, sel, out, pred), true
			case schema.VecFloat64:
				return selColLit(v.F64, v.Nulls, float64(k), sel, out, pred), true
			}
			return nil, false
		}, true
	case float64:
		return func(vecs []*schema.Vector, sel []int32, out []int32) ([]int32, bool) {
			switch v := vecs[idx]; v.Kind {
			case schema.VecFloat64:
				return selColLit(v.F64, v.Nulls, k, sel, out, pred), true
			case schema.VecInt64:
				// Compare int64 rows against the float literal in float64
				// space (types.Compare semantics); NaN literals never match
				// any ordering predicate through pred on ±1/0, matching
				// compareFloat only for non-NaN k, so bail on NaN.
				if k != k {
					return nil, false
				}
				data, nulls := v.I64, v.Nulls
				lt, eq, gt := pred(-1), pred(0), pred(1)
				for _, r := range sel {
					if nulls != nil && nulls[r] {
						continue
					}
					f := float64(data[r])
					if (f < k && lt) || (f == k && eq) || (f > k && gt) {
						out = append(out, r)
					}
				}
				return out, true
			}
			return nil, false
		}, true
	case string:
		return func(vecs []*schema.Vector, sel []int32, out []int32) ([]int32, bool) {
			if v := vecs[idx]; v.Kind == schema.VecString {
				return selColLit(v.S, v.Nulls, k, sel, out, pred), true
			}
			return nil, false
		}, true
	case bool:
		return func(vecs []*schema.Vector, sel []int32, out []int32) ([]int32, bool) {
			v := vecs[idx]
			if v.Kind != schema.VecBool {
				return nil, false
			}
			data, nulls := v.B, v.Nulls
			for _, r := range sel {
				if nulls != nil && nulls[r] {
					continue
				}
				c := 0
				switch {
				case !data[r] && k:
					c = -1
				case data[r] && !k:
					c = 1
				}
				if pred(c) {
					out = append(out, r)
				}
			}
			return out, true
		}, true
	}
	return nil, false
}

// VecColKernel materializes one output vector over the selected rows.
// ok=false at run time means the input vector kinds do not match and the
// caller must use its boxed fallback.
type VecColKernel func(vecs []*schema.Vector, sel []int32) (*schema.Vector, bool, error)

// ArithKernelVec compiles the hot projection shapes into a typed column
// kernel: $i (gather), literal (broadcast), $i ⊕ literal, literal ⊕ $i and
// $i ⊕ $j for ⊕ ∈ {+, -, *, /} over int64/float64 with strict NULL
// propagation, and the same operand shapes under a comparison producing a
// bool vector.
func ArithKernelVec(n Node) (VecColKernel, bool) {
	switch x := n.(type) {
	case *InputRef:
		i := x.Index
		return func(vecs []*schema.Vector, sel []int32) (*schema.Vector, bool, error) {
			v := vecs[i]
			if v.Kind == schema.VecAny {
				return nil, false, nil
			}
			return v.Gather(sel), true, nil
		}, true
	case *Literal:
		v := x.Value
		return func(vecs []*schema.Vector, sel []int32) (*schema.Vector, bool, error) {
			n := len(sel)
			switch lit := v.(type) {
			case int64:
				d := make([]int64, n)
				for i := range d {
					d[i] = lit
				}
				return &schema.Vector{Kind: schema.VecInt64, I64: d}, true, nil
			case float64:
				d := make([]float64, n)
				for i := range d {
					d[i] = lit
				}
				return &schema.Vector{Kind: schema.VecFloat64, F64: d}, true, nil
			case string:
				d := make([]string, n)
				for i := range d {
					d[i] = lit
				}
				return &schema.Vector{Kind: schema.VecString, S: d}, true, nil
			case bool:
				d := make([]bool, n)
				for i := range d {
					d[i] = lit
				}
				return &schema.Vector{Kind: schema.VecBool, B: d}, true, nil
			}
			return nil, false, nil
		}, true
	case *Call:
		if len(x.Operands) != 2 {
			return nil, false
		}
		lhs, lok := vecOperandOf(x.Operands[0])
		rhs, rok := vecOperandOf(x.Operands[1])
		if !lok || !rok {
			return nil, false
		}
		if pred := cmpPred(x.Op); pred != nil {
			return cmpKernelVec(lhs, rhs, pred), true
		}
		var sym byte
		switch x.Op {
		case OpPlus:
			sym = '+'
		case OpMinus:
			sym = '-'
		case OpTimes:
			sym = '*'
		case OpDivide:
			sym = '/'
		default:
			return nil, false
		}
		return arithKernelVec(lhs, rhs, sym), true
	}
	return nil, false
}

// vecOperand describes one side of a binary kernel: either a column ordinal
// or a literal value.
type vecOperand struct {
	col int // -1 for literal
	lit any
}

func vecOperandOf(n Node) (vecOperand, bool) {
	switch x := n.(type) {
	case *InputRef:
		return vecOperand{col: x.Index}, true
	case *Literal:
		return vecOperand{col: -1, lit: x.Value}, true
	}
	return vecOperand{}, false
}

// numSide resolves one operand against a batch into either an int64 slice, a
// float64 slice, or a constant. ok=false when the operand is not numeric
// int64/float64 for this batch.
type numSide struct {
	i64   []int64
	f64   []float64
	nulls []bool
	ci64  int64
	cf64  float64
	// mode: 0 int64 col, 1 float64 col, 2 int64 const, 3 float64 const
	mode uint8
}

func resolveNumSide(op vecOperand, vecs []*schema.Vector) (numSide, bool) {
	if op.col >= 0 {
		v := vecs[op.col]
		switch v.Kind {
		case schema.VecInt64:
			return numSide{i64: v.I64, nulls: v.Nulls, mode: 0}, true
		case schema.VecFloat64:
			return numSide{f64: v.F64, nulls: v.Nulls, mode: 1}, true
		}
		return numSide{}, false
	}
	switch c := op.lit.(type) {
	case int64:
		return numSide{ci64: c, cf64: float64(c), mode: 2}, true
	case float64:
		return numSide{cf64: c, mode: 3}, true
	}
	return numSide{}, false
}

func (s *numSide) isInt() bool   { return s.mode == 0 || s.mode == 2 }
func (s *numSide) isConst() bool { return s.mode >= 2 }

func (s *numSide) intAt(r int32) int64 {
	if s.mode == 2 {
		return s.ci64
	}
	return s.i64[r]
}

func (s *numSide) floatAt(r int32) float64 {
	switch s.mode {
	case 0:
		return float64(s.i64[r])
	case 1:
		return s.f64[r]
	}
	return s.cf64
}

func (s *numSide) nullAt(r int32) bool { return s.nulls != nil && s.nulls[r] }

// mergeNulls builds the output null mask of a strict binary kernel over the
// selection (nil when no row is NULL).
func mergeNulls(a, b *numSide, sel []int32) []bool {
	if a.nulls == nil && b.nulls == nil {
		return nil
	}
	var out []bool
	for i, r := range sel {
		if a.nullAt(r) || b.nullAt(r) {
			if out == nil {
				out = make([]bool, len(sel))
			}
			out[i] = true
		}
	}
	return out
}

// arithKernelVec builds the typed arithmetic kernel: both-int64 stays
// integral, otherwise float64, matching arithValues exactly (including the
// division-by-zero error).
func arithKernelVec(l, r vecOperand, sym byte) VecColKernel {
	return func(vecs []*schema.Vector, sel []int32) (*schema.Vector, bool, error) {
		a, ok := resolveNumSide(l, vecs)
		if !ok {
			return nil, false, nil
		}
		b, ok := resolveNumSide(r, vecs)
		if !ok {
			return nil, false, nil
		}
		n := len(sel)
		nulls := mergeNulls(&a, &b, sel)
		if a.isInt() && b.isInt() {
			d := make([]int64, n)
			for i, row := range sel {
				if nulls != nil && nulls[i] {
					continue
				}
				x, y := a.intAt(row), b.intAt(row)
				switch sym {
				case '+':
					d[i] = x + y
				case '-':
					d[i] = x - y
				case '*':
					d[i] = x * y
				case '/':
					if y == 0 {
						return nil, true, fmt.Errorf("rex: division by zero")
					}
					d[i] = x / y
				}
			}
			return &schema.Vector{Kind: schema.VecInt64, I64: d, Nulls: nulls}, true, nil
		}
		d := make([]float64, n)
		for i, row := range sel {
			if nulls != nil && nulls[i] {
				continue
			}
			x, y := a.floatAt(row), b.floatAt(row)
			switch sym {
			case '+':
				d[i] = x + y
			case '-':
				d[i] = x - y
			case '*':
				d[i] = x * y
			case '/':
				if y == 0 {
					return nil, true, fmt.Errorf("rex: division by zero")
				}
				d[i] = x / y
			}
		}
		return &schema.Vector{Kind: schema.VecFloat64, F64: d, Nulls: nulls}, true, nil
	}
}

// cmpKernelVec builds the typed comparison kernel producing a nullable bool
// vector (strict NULL propagation, int64 fast path, float64 otherwise —
// types.Compare semantics for numeric operands). String operands are
// supported for the column ⋈ column and column ⋈ literal shapes.
func cmpKernelVec(l, r vecOperand, pred func(int) bool) VecColKernel {
	return func(vecs []*schema.Vector, sel []int32) (*schema.Vector, bool, error) {
		if out, ok := stringCmpVec(l, r, vecs, sel, pred); ok {
			return out, true, nil
		}
		a, ok := resolveNumSide(l, vecs)
		if !ok {
			return nil, false, nil
		}
		b, ok := resolveNumSide(r, vecs)
		if !ok {
			return nil, false, nil
		}
		n := len(sel)
		nulls := mergeNulls(&a, &b, sel)
		d := make([]bool, n)
		lt, eq, gt := pred(-1), pred(0), pred(1)
		if a.isInt() && b.isInt() {
			for i, row := range sel {
				if nulls != nil && nulls[i] {
					continue
				}
				x, y := a.intAt(row), b.intAt(row)
				d[i] = (x < y && lt) || (x == y && eq) || (x > y && gt)
			}
		} else {
			for i, row := range sel {
				if nulls != nil && nulls[i] {
					continue
				}
				x, y := a.floatAt(row), b.floatAt(row)
				d[i] = (x < y && lt) || (x == y && eq) || (x > y && gt)
			}
		}
		return &schema.Vector{Kind: schema.VecBool, B: d, Nulls: nulls}, true, nil
	}
}

// stringCmpVec handles the string comparison shapes of cmpKernelVec:
// string-column ⋈ string-column and string-column ⋈ string-literal (either
// side). ok=false when the operands are not a string shape.
func stringCmpVec(l, r vecOperand, vecs []*schema.Vector, sel []int32, pred func(int) bool) (*schema.Vector, bool) {
	type strSide struct {
		data  []string
		nulls []bool
		k     string // constant when data == nil
	}
	resolve := func(op vecOperand) (strSide, bool) {
		if op.col >= 0 {
			v := vecs[op.col]
			if v.Kind != schema.VecString {
				return strSide{}, false
			}
			return strSide{data: v.S, nulls: v.Nulls}, true
		}
		s, isStr := op.lit.(string)
		return strSide{k: s}, isStr
	}
	a, aok := resolve(l)
	b, bok := resolve(r)
	// Require at least one string column so numeric shapes fall through.
	if !aok || !bok || (a.data == nil && b.data == nil) {
		return nil, false
	}
	n := len(sel)
	d := make([]bool, n)
	var nulls []bool
	lt, eq, gt := pred(-1), pred(0), pred(1)
	for i, row := range sel {
		if (a.nulls != nil && a.nulls[row]) || (b.nulls != nil && b.nulls[row]) {
			if nulls == nil {
				nulls = make([]bool, n)
			}
			nulls[i] = true
			continue
		}
		x, y := a.k, b.k
		if a.data != nil {
			x = a.data[row]
		}
		if b.data != nil {
			y = b.data[row]
		}
		d[i] = (x < y && lt) || (x == y && eq) || (x > y && gt)
	}
	return &schema.Vector{Kind: schema.VecBool, B: d, Nulls: nulls}, true
}
