package rex

// The expression simplifier backs the ReduceExpressions planner rules (§6):
// it folds constant sub-expressions, prunes trivial boolean structure
// (x AND TRUE -> x, x OR TRUE -> TRUE), collapses constant CASE arms and
// pushes NOT through comparisons. Simplification is semantics-preserving for
// all rows — a property verified by property-based tests.

// Simplify returns a simplified expression equivalent to n.
func Simplify(n Node) Node {
	switch c := n.(type) {
	case *Call:
		ops := make([]Node, len(c.Operands))
		for i, o := range c.Operands {
			ops[i] = Simplify(o)
		}
		n = &Call{Op: c.Op, Operands: ops, T: c.T}
		return simplifyCall(n.(*Call))
	default:
		return n
	}
}

func simplifyCall(c *Call) Node {
	switch c.Op {
	case OpAnd:
		var terms []Node
		for _, o := range c.Operands {
			for _, t := range Conjuncts(o) {
				if IsAlwaysFalse(t) {
					return Bool(false)
				}
				if !IsAlwaysTrue(t) {
					terms = append(terms, t)
				}
			}
		}
		terms = dedupe(terms)
		switch len(terms) {
		case 0:
			return Bool(true)
		case 1:
			return terms[0]
		}
		return &Call{Op: OpAnd, Operands: terms, T: c.T}
	case OpOr:
		var terms []Node
		for _, o := range c.Operands {
			if oc, ok := o.(*Call); ok && oc.Op == OpOr {
				terms = append(terms, oc.Operands...)
				continue
			}
			if IsAlwaysTrue(o) {
				return Bool(true)
			}
			if !IsAlwaysFalse(o) {
				terms = append(terms, o)
			}
		}
		terms = dedupe(terms)
		switch len(terms) {
		case 0:
			return Bool(false)
		case 1:
			return terms[0]
		}
		return &Call{Op: OpOr, Operands: terms, T: c.T}
	case OpNot:
		inner := c.Operands[0]
		if IsAlwaysTrue(inner) {
			return Bool(false)
		}
		if IsAlwaysFalse(inner) {
			return Bool(true)
		}
		if ic, ok := inner.(*Call); ok {
			if ic.Op == OpNot {
				return ic.Operands[0] // double negation
			}
			// Push NOT through comparisons only when neither side is
			// nullable (3-valued logic makes NOT(a<b) ≠ a>=b with NULLs).
			if neg := Negate(ic.Op); neg != nil &&
				!nullableOperand(ic.Operands[0]) && !nullableOperand(ic.Operands[1]) {
				return NewCall(neg, ic.Operands...)
			}
		}
	case OpCase:
		// Drop arms with constant-FALSE conditions; short-circuit on a
		// constant-TRUE condition.
		var ops []Node
		n := len(c.Operands)
		for i := 0; i+1 < n; i += 2 {
			cond := c.Operands[i]
			if IsAlwaysFalse(cond) {
				continue
			}
			if IsAlwaysTrue(cond) {
				if len(ops) == 0 {
					return c.Operands[i+1]
				}
				ops = append(ops, c.Operands[i+1]) // becomes the ELSE
				return &Call{Op: OpCase, Operands: ops, T: c.T}
			}
			ops = append(ops, cond, c.Operands[i+1])
		}
		if n%2 == 1 {
			if len(ops) == 0 {
				return c.Operands[n-1]
			}
			ops = append(ops, c.Operands[n-1])
		}
		if len(ops) != len(c.Operands) {
			return &Call{Op: OpCase, Operands: ops, T: c.T}
		}
	case OpCast:
		// CAST to the same type is the identity.
		if c.Operands[0].Type().Equal(c.T) {
			return c.Operands[0]
		}
	}

	// Constant folding for strict deterministic operators.
	if c.Op != OpCast && IsConstant(c) && foldable(c.Op) {
		if v, err := EvalConstant(c); err == nil {
			return NewLiteral(v, c.T)
		}
	}
	return c
}

func nullableOperand(n Node) bool {
	t := n.Type()
	return t == nil || t.Nullable
}

// foldable reports whether an operator may be evaluated at plan time.
func foldable(op *Operator) bool {
	switch op {
	case OpCase, OpCast:
		return true
	}
	return op.eval != nil || op == OpAnd || op == OpOr || op == OpCoalesce
}

func dedupe(terms []Node) []Node {
	seen := map[string]bool{}
	out := terms[:0]
	for _, t := range terms {
		d := t.String()
		if !seen[d] {
			seen[d] = true
			out = append(out, t)
		}
	}
	return out
}
