package rex

import (
	"fmt"

	"calcite/internal/types"
)

// Evaluator evaluates row expressions against input rows. A single Evaluator
// may be shared by operators of one query; it carries the dynamic parameter
// values of a prepared statement and the correlation environment.
type Evaluator struct {
	// Params holds values for DynamicParam references.
	Params []any
	// Correl maps correlation variable names to their current rows.
	Correl map[string][]any
}

// Eval evaluates expression n against row. NULL propagates per SQL
// semantics: strict operators return NULL when any operand is NULL.
func (ev *Evaluator) Eval(n Node, row []any) (any, error) {
	switch x := n.(type) {
	case *Literal:
		return x.Value, nil
	case *InputRef:
		if x.Index < 0 || x.Index >= len(row) {
			return nil, fmt.Errorf("rex: input reference $%d out of range (row width %d)", x.Index, len(row))
		}
		return row[x.Index], nil
	case *DynamicParam:
		if ev == nil || x.Index >= len(ev.Params) {
			return nil, fmt.Errorf("rex: unbound parameter ?%d", x.Index)
		}
		return ev.Params[x.Index], nil
	case *CorrelVariable:
		if ev == nil || ev.Correl == nil {
			return nil, fmt.Errorf("rex: unbound correlation variable %s", x.Name)
		}
		r, ok := ev.Correl[x.Name]
		if !ok {
			return nil, fmt.Errorf("rex: unbound correlation variable %s", x.Name)
		}
		return r, nil
	case *Call:
		return ev.evalCall(x, row)
	}
	return nil, fmt.Errorf("rex: cannot evaluate %T", n)
}

func (ev *Evaluator) evalCall(c *Call, row []any) (any, error) {
	switch c.Op {
	case OpAnd:
		// Three-valued AND: FALSE dominates, then NULL, then TRUE.
		sawNull := false
		for _, o := range c.Operands {
			v, err := ev.Eval(o, row)
			if err != nil {
				return nil, err
			}
			if v == nil {
				sawNull = true
				continue
			}
			b, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("rex: AND operand is %T", v)
			}
			if !b {
				return false, nil
			}
		}
		if sawNull {
			return nil, nil
		}
		return true, nil
	case OpOr:
		sawNull := false
		for _, o := range c.Operands {
			v, err := ev.Eval(o, row)
			if err != nil {
				return nil, err
			}
			if v == nil {
				sawNull = true
				continue
			}
			b, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("rex: OR operand is %T", v)
			}
			if b {
				return true, nil
			}
		}
		if sawNull {
			return nil, nil
		}
		return false, nil
	case OpCase:
		n := len(c.Operands)
		for i := 0; i+1 < n; i += 2 {
			cond, err := ev.Eval(c.Operands[i], row)
			if err != nil {
				return nil, err
			}
			if b, ok := cond.(bool); ok && b {
				return ev.Eval(c.Operands[i+1], row)
			}
		}
		if n%2 == 1 {
			return ev.Eval(c.Operands[n-1], row)
		}
		return nil, nil
	case OpCoalesce:
		for _, o := range c.Operands {
			v, err := ev.Eval(o, row)
			if err != nil {
				return nil, err
			}
			if v != nil {
				return v, nil
			}
		}
		return nil, nil
	case OpCast:
		v, err := ev.Eval(c.Operands[0], row)
		if err != nil {
			return nil, err
		}
		return types.CoerceTo(v, c.T)
	}

	args := make([]any, len(c.Operands))
	for i, o := range c.Operands {
		v, err := ev.Eval(o, row)
		if err != nil {
			return nil, err
		}
		if v == nil && !c.Op.NullSafe {
			return nil, nil // strict NULL propagation
		}
		args[i] = v
	}
	if c.Op.eval == nil {
		return nil, fmt.Errorf("rex: operator %s has no implementation", c.Op.Name)
	}
	return c.Op.eval(args)
}

// EvalBool evaluates a predicate, mapping NULL to false (filter semantics:
// rows whose condition is UNKNOWN are dropped).
func (ev *Evaluator) EvalBool(n Node, row []any) (bool, error) {
	v, err := ev.Eval(n, row)
	if err != nil {
		return false, err
	}
	if v == nil {
		return false, nil
	}
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("rex: predicate evaluated to %T", v)
	}
	return b, nil
}

// EvalConstant evaluates a constant expression with no row context.
func EvalConstant(n Node) (any, error) {
	var ev Evaluator
	return ev.Eval(n, nil)
}
