package rex

// Expression compilation: the reproduction of linq4j code generation (§5 of
// the paper: expressions are compiled, not interpreted, which is a large part
// of why the enumerable convention is fast). Go has no runtime codegen, so
// Compile lowers an expression tree once into nested closures: literals are
// hoisted, input references are bound to ordinals, operator dispatch and the
// per-node type switch of the tree-walking Evaluator disappear from the
// per-row path. Strict NULL propagation and three-valued logic are preserved
// exactly.
//
// Expressions containing dynamic parameters or correlation variables are not
// compilable (their values arrive per execution); callers fall back to
// Evaluator.Eval for those.

import (
	"fmt"

	"calcite/internal/types"
)

// RowFn is a compiled expression evaluated against a row-major row.
type RowFn func(row []any) (any, error)

// ColFn is a compiled expression evaluated against column-major data at
// physical row r (the form batch operators use: no row assembly needed).
type ColFn func(cols [][]any, r int) (any, error)

// evalFn is the internal compiled form, usable against either layout: when
// cols is non-nil it reads cols[i][r], otherwise row[i].
type evalFn func(row []any, cols [][]any, r int) (any, error)

// Compile lowers n into a closure over row-major rows. It returns an error
// if n contains constructs that need per-execution state (dynamic
// parameters, correlation variables) or an operator with no implementation.
func Compile(n Node) (RowFn, error) {
	f, err := lower(n)
	if err != nil {
		return nil, err
	}
	return func(row []any) (any, error) { return f(row, nil, 0) }, nil
}

// CompileCols lowers n into a closure over column-major batches.
func CompileCols(n Node) (ColFn, error) {
	f, err := lower(n)
	if err != nil {
		return nil, err
	}
	return func(cols [][]any, r int) (any, error) { return f(nil, cols, r) }, nil
}

// CompileBool lowers a predicate with filter semantics: NULL and non-boolean
// results map to false (rows whose condition is UNKNOWN are dropped).
func CompileBool(n Node) (func(row []any) (bool, error), error) {
	f, err := lower(n)
	if err != nil {
		return nil, err
	}
	return func(row []any) (bool, error) {
		v, err := f(row, nil, 0)
		if err != nil {
			return false, err
		}
		if v == nil {
			return false, nil
		}
		b, ok := v.(bool)
		if !ok {
			return false, fmt.Errorf("rex: predicate evaluated to %T", v)
		}
		return b, nil
	}, nil
}

// CompileColsBool is CompileBool over column-major data.
func CompileColsBool(n Node) (func(cols [][]any, r int) (bool, error), error) {
	f, err := lower(n)
	if err != nil {
		return nil, err
	}
	return func(cols [][]any, r int) (bool, error) {
		v, err := f(nil, cols, r)
		if err != nil {
			return false, err
		}
		if v == nil {
			return false, nil
		}
		b, ok := v.(bool)
		if !ok {
			return false, fmt.Errorf("rex: predicate evaluated to %T", v)
		}
		return b, nil
	}, nil
}

// lower compiles one node into its closure form.
func lower(n Node) (evalFn, error) {
	switch x := n.(type) {
	case *Literal:
		v := x.Value
		return func([]any, [][]any, int) (any, error) { return v, nil }, nil
	case *InputRef:
		i := x.Index
		return func(row []any, cols [][]any, r int) (any, error) {
			if cols != nil {
				if i < 0 || i >= len(cols) {
					return nil, fmt.Errorf("rex: input reference $%d out of range (width %d)", i, len(cols))
				}
				return cols[i][r], nil
			}
			if i < 0 || i >= len(row) {
				return nil, fmt.Errorf("rex: input reference $%d out of range (row width %d)", i, len(row))
			}
			return row[i], nil
		}, nil
	case *DynamicParam:
		return nil, fmt.Errorf("rex: dynamic parameter ?%d is not compilable", x.Index)
	case *CorrelVariable:
		return nil, fmt.Errorf("rex: correlation variable %s is not compilable", x.Name)
	case *Call:
		return lowerCall(x)
	}
	return nil, fmt.Errorf("rex: cannot compile %T", n)
}

func lowerOperands(c *Call) ([]evalFn, error) {
	fns := make([]evalFn, len(c.Operands))
	for i, o := range c.Operands {
		f, err := lower(o)
		if err != nil {
			return nil, err
		}
		fns[i] = f
	}
	return fns, nil
}

func lowerCall(c *Call) (evalFn, error) {
	switch c.Op {
	case OpAnd:
		fns, err := lowerOperands(c)
		if err != nil {
			return nil, err
		}
		return func(row []any, cols [][]any, r int) (any, error) {
			sawNull := false
			for _, f := range fns {
				v, err := f(row, cols, r)
				if err != nil {
					return nil, err
				}
				if v == nil {
					sawNull = true
					continue
				}
				b, ok := v.(bool)
				if !ok {
					return nil, fmt.Errorf("rex: AND operand is %T", v)
				}
				if !b {
					return false, nil
				}
			}
			if sawNull {
				return nil, nil
			}
			return true, nil
		}, nil
	case OpOr:
		fns, err := lowerOperands(c)
		if err != nil {
			return nil, err
		}
		return func(row []any, cols [][]any, r int) (any, error) {
			sawNull := false
			for _, f := range fns {
				v, err := f(row, cols, r)
				if err != nil {
					return nil, err
				}
				if v == nil {
					sawNull = true
					continue
				}
				b, ok := v.(bool)
				if !ok {
					return nil, fmt.Errorf("rex: OR operand is %T", v)
				}
				if b {
					return true, nil
				}
			}
			if sawNull {
				return nil, nil
			}
			return false, nil
		}, nil
	case OpCase:
		fns, err := lowerOperands(c)
		if err != nil {
			return nil, err
		}
		return func(row []any, cols [][]any, r int) (any, error) {
			n := len(fns)
			for i := 0; i+1 < n; i += 2 {
				cond, err := fns[i](row, cols, r)
				if err != nil {
					return nil, err
				}
				if b, ok := cond.(bool); ok && b {
					return fns[i+1](row, cols, r)
				}
			}
			if n%2 == 1 {
				return fns[n-1](row, cols, r)
			}
			return nil, nil
		}, nil
	case OpCoalesce:
		fns, err := lowerOperands(c)
		if err != nil {
			return nil, err
		}
		return func(row []any, cols [][]any, r int) (any, error) {
			for _, f := range fns {
				v, err := f(row, cols, r)
				if err != nil {
					return nil, err
				}
				if v != nil {
					return v, nil
				}
			}
			return nil, nil
		}, nil
	case OpCast:
		f, err := lower(c.Operands[0])
		if err != nil {
			return nil, err
		}
		t := c.T
		return func(row []any, cols [][]any, r int) (any, error) {
			v, err := f(row, cols, r)
			if err != nil {
				return nil, err
			}
			return types.CoerceTo(v, t)
		}, nil
	case OpNot:
		f, err := lower(c.Operands[0])
		if err != nil {
			return nil, err
		}
		return func(row []any, cols [][]any, r int) (any, error) {
			v, err := f(row, cols, r)
			if err != nil {
				return nil, err
			}
			if v == nil {
				return nil, nil
			}
			b, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("rex: NOT applied to %T", v)
			}
			return !b, nil
		}, nil
	case OpIsNull:
		f, err := lower(c.Operands[0])
		if err != nil {
			return nil, err
		}
		return func(row []any, cols [][]any, r int) (any, error) {
			v, err := f(row, cols, r)
			if err != nil {
				return nil, err
			}
			return v == nil, nil
		}, nil
	case OpIsNotNull:
		f, err := lower(c.Operands[0])
		if err != nil {
			return nil, err
		}
		return func(row []any, cols [][]any, r int) (any, error) {
			v, err := f(row, cols, r)
			if err != nil {
				return nil, err
			}
			return v != nil, nil
		}, nil
	}

	if pred := cmpPred(c.Op); pred != nil && len(c.Operands) == 2 {
		return lowerCompare(c, pred)
	}
	if len(c.Operands) == 2 {
		switch c.Op {
		case OpPlus, OpMinus, OpTimes, OpDivide:
			return lowerArith(c)
		}
	}

	// Generic strict call: evaluate operands, NULL-propagate, dispatch to the
	// operator implementation.
	fns, err := lowerOperands(c)
	if err != nil {
		return nil, err
	}
	if c.Op.eval == nil {
		return nil, fmt.Errorf("rex: operator %s has no implementation", c.Op.Name)
	}
	op := c.Op
	return func(row []any, cols [][]any, r int) (any, error) {
		args := make([]any, len(fns))
		for i, f := range fns {
			v, err := f(row, cols, r)
			if err != nil {
				return nil, err
			}
			if v == nil && !op.NullSafe {
				return nil, nil
			}
			args[i] = v
		}
		return op.eval(args)
	}, nil
}

// cmpPred maps a comparison operator to its predicate over types.Compare
// results, or nil for non-comparisons.
func cmpPred(op *Operator) func(c int) bool {
	switch op {
	case OpEquals:
		return func(c int) bool { return c == 0 }
	case OpNotEquals:
		return func(c int) bool { return c != 0 }
	case OpLess:
		return func(c int) bool { return c < 0 }
	case OpLessEqual:
		return func(c int) bool { return c <= 0 }
	case OpGreater:
		return func(c int) bool { return c > 0 }
	case OpGreaterEqual:
		return func(c int) bool { return c >= 0 }
	}
	return nil
}

func lowerCompare(c *Call, pred func(int) bool) (evalFn, error) {
	a, err := lower(c.Operands[0])
	if err != nil {
		return nil, err
	}
	b, err := lower(c.Operands[1])
	if err != nil {
		return nil, err
	}
	return func(row []any, cols [][]any, r int) (any, error) {
		av, err := a(row, cols, r)
		if err != nil {
			return nil, err
		}
		if av == nil {
			return nil, nil
		}
		bv, err := b(row, cols, r)
		if err != nil {
			return nil, err
		}
		if bv == nil {
			return nil, nil
		}
		// Fast paths for the dominant runtime types; types.Compare handles
		// the general (mixed/complex) case identically.
		if x, ok := av.(int64); ok {
			if y, ok := bv.(int64); ok {
				switch {
				case x < y:
					return pred(-1), nil
				case x > y:
					return pred(1), nil
				}
				return pred(0), nil
			}
		}
		return pred(types.Compare(av, bv)), nil
	}, nil
}

func lowerArith(c *Call) (evalFn, error) {
	a, err := lower(c.Operands[0])
	if err != nil {
		return nil, err
	}
	b, err := lower(c.Operands[1])
	if err != nil {
		return nil, err
	}
	var sym byte
	switch c.Op {
	case OpPlus:
		sym = '+'
	case OpMinus:
		sym = '-'
	case OpTimes:
		sym = '*'
	case OpDivide:
		sym = '/'
	}
	return func(row []any, cols [][]any, r int) (any, error) {
		av, err := a(row, cols, r)
		if err != nil {
			return nil, err
		}
		if av == nil {
			return nil, nil
		}
		bv, err := b(row, cols, r)
		if err != nil {
			return nil, err
		}
		if bv == nil {
			return nil, nil
		}
		return arithValues(sym, av, bv)
	}, nil
}

// arithValues applies a binary arithmetic operator with the engine's numeric
// semantics: both-int64 stays integral, otherwise float64 (matching the
// Operator.eval implementations in op.go).
func arithValues(sym byte, av, bv any) (any, error) {
	if x, ok := av.(int64); ok {
		if y, ok := bv.(int64); ok {
			switch sym {
			case '+':
				return x + y, nil
			case '-':
				return x - y, nil
			case '*':
				return x * y, nil
			case '/':
				if y == 0 {
					return nil, fmt.Errorf("rex: division by zero")
				}
				return x / y, nil
			}
		}
	}
	x, ok1 := types.AsFloat(av)
	y, ok2 := types.AsFloat(bv)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("rex: non-numeric operands %T, %T", av, bv)
	}
	switch sym {
	case '+':
		return x + y, nil
	case '-':
		return x - y, nil
	case '*':
		return x * y, nil
	case '/':
		if y == 0 {
			return nil, fmt.Errorf("rex: division by zero")
		}
		return x / y, nil
	}
	return nil, fmt.Errorf("rex: unknown arithmetic operator %q", sym)
}
