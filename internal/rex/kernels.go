package rex

// Batch kernels: specialized column loops for the hot predicates and
// arithmetic shapes of analytic queries. Where the compiled closure form
// (compile.go) removes tree-walking, a kernel additionally removes the
// per-row closure dispatch: one type assertion and one branch per value,
// inside a single loop over a column.
//
// Kernels are best-effort pattern matches. FilterKernel and ArithKernel
// return ok=false for shapes they do not recognize and callers fall back to
// the compiled closure (and from there to the Evaluator).

import (
	"strings"

	"calcite/internal/types"
)

// SelKernel narrows a selection: it appends to out the indices of sel whose
// rows satisfy the predicate, and returns out. NULL comparisons drop rows
// (SQL filter semantics).
type SelKernel func(cols [][]any, sel []int32, out []int32) ([]int32, error)

// FilterKernel compiles a predicate into a selection kernel if it has one of
// the recognized hot shapes:
//
//   - column ⋈ literal, literal ⋈ column (⋈ a comparison) on
//     int64/float64/string columns
//   - column ⋈ column
//   - column IS NULL / IS NOT NULL
//   - AND of recognized shapes (conjuncts narrow the selection in turn)
func FilterKernel(n Node) (SelKernel, bool) {
	c, ok := n.(*Call)
	if !ok {
		return nil, false
	}
	if c.Op == OpAnd {
		kernels := make([]SelKernel, len(c.Operands))
		for i, o := range c.Operands {
			k, ok := FilterKernel(o)
			if !ok {
				return nil, false
			}
			kernels[i] = k
		}
		// The ping-pong scratch buffers live in the kernel's captured state
		// so they reach steady size once and stay zero-alloc across batches
		// (kernels are built per bind and used single-threaded).
		var bufs [2][]int32
		return func(cols [][]any, sel []int32, out []int32) ([]int32, error) {
			// Each conjunct filters the previous conjunct's survivors. Two
			// scratch buffers ping-pong so a kernel never appends to the
			// slice it is reading; the final conjunct appends to out.
			cur := sel
			for i, k := range kernels {
				dst := out
				if i < len(kernels)-1 {
					dst = bufs[i%2][:0]
				}
				next, err := k(cols, cur, dst)
				if err != nil {
					return nil, err
				}
				if i == len(kernels)-1 {
					return next, nil
				}
				bufs[i%2] = next
				cur = next
				if len(cur) == 0 {
					return out, nil
				}
			}
			return out, nil
		}, true
	}

	switch c.Op {
	case OpIsNull:
		if ref, ok := c.Operands[0].(*InputRef); ok {
			i := ref.Index
			return func(cols [][]any, sel []int32, out []int32) ([]int32, error) {
				col := cols[i]
				for _, r := range sel {
					if col[r] == nil {
						out = append(out, r)
					}
				}
				return out, nil
			}, true
		}
	case OpIsNotNull:
		if ref, ok := c.Operands[0].(*InputRef); ok {
			i := ref.Index
			return func(cols [][]any, sel []int32, out []int32) ([]int32, error) {
				col := cols[i]
				for _, r := range sel {
					if col[r] != nil {
						out = append(out, r)
					}
				}
				return out, nil
			}, true
		}
	}

	pred := cmpPred(c.Op)
	if pred == nil || len(c.Operands) != 2 {
		return nil, false
	}
	// column ⋈ column
	if lref, ok := c.Operands[0].(*InputRef); ok {
		if rref, ok := c.Operands[1].(*InputRef); ok {
			li, ri := lref.Index, rref.Index
			return func(cols [][]any, sel []int32, out []int32) ([]int32, error) {
				lc, rc := cols[li], cols[ri]
				for _, r := range sel {
					a, b := lc[r], rc[r]
					if a == nil || b == nil {
						continue
					}
					if pred(types.Compare(a, b)) {
						out = append(out, r)
					}
				}
				return out, nil
			}, true
		}
	}
	// column ⋈ literal  /  literal ⋈ column (mirrored predicate)
	if ref, ok := c.Operands[0].(*InputRef); ok {
		if lit, ok := c.Operands[1].(*Literal); ok {
			return cmpLiteralKernel(ref.Index, lit.Value, pred)
		}
	}
	if lit, ok := c.Operands[0].(*Literal); ok {
		if ref, ok := c.Operands[1].(*InputRef); ok {
			mirrored := func(cmp int) bool { return pred(-cmp) }
			return cmpLiteralKernel(ref.Index, lit.Value, mirrored)
		}
	}
	return nil, false
}

// cmpLiteralKernel builds a typed column-vs-constant comparison loop.
func cmpLiteralKernel(idx int, lit any, pred func(int) bool) (SelKernel, bool) {
	switch k := lit.(type) {
	case nil:
		// ⋈ NULL is never true: the kernel selects nothing.
		return func(cols [][]any, sel []int32, out []int32) ([]int32, error) {
			return out, nil
		}, true
	case int64:
		return func(cols [][]any, sel []int32, out []int32) ([]int32, error) {
			col := cols[idx]
			for _, r := range sel {
				v := col[r]
				if v == nil {
					continue
				}
				if x, ok := v.(int64); ok {
					switch {
					case x < k:
						if pred(-1) {
							out = append(out, r)
						}
					case x > k:
						if pred(1) {
							out = append(out, r)
						}
					default:
						if pred(0) {
							out = append(out, r)
						}
					}
					continue
				}
				if pred(types.Compare(v, k)) {
					out = append(out, r)
				}
			}
			return out, nil
		}, true
	case float64:
		return func(cols [][]any, sel []int32, out []int32) ([]int32, error) {
			col := cols[idx]
			for _, r := range sel {
				v := col[r]
				if v == nil {
					continue
				}
				if x, ok := v.(float64); ok {
					switch {
					case x < k:
						if pred(-1) {
							out = append(out, r)
						}
					case x > k:
						if pred(1) {
							out = append(out, r)
						}
					default:
						if pred(types.Compare(v, k)) { // NaN handling
							out = append(out, r)
						}
					}
					continue
				}
				if pred(types.Compare(v, k)) {
					out = append(out, r)
				}
			}
			return out, nil
		}, true
	case string:
		return func(cols [][]any, sel []int32, out []int32) ([]int32, error) {
			col := cols[idx]
			for _, r := range sel {
				v := col[r]
				if v == nil {
					continue
				}
				if x, ok := v.(string); ok {
					if pred(strings.Compare(x, k)) {
						out = append(out, r)
					}
					continue
				}
				if pred(types.Compare(v, k)) {
					out = append(out, r)
				}
			}
			return out, nil
		}, true
	case bool:
		return func(cols [][]any, sel []int32, out []int32) ([]int32, error) {
			col := cols[idx]
			for _, r := range sel {
				v := col[r]
				if v == nil {
					continue
				}
				if pred(types.Compare(v, k)) {
					out = append(out, r)
				}
			}
			return out, nil
		}, true
	}
	return nil, false
}

// ColKernel materializes one output value per selected row into out, which
// callers size to len(sel).
type ColKernel func(cols [][]any, sel []int32, out []any) error

// ArithKernel compiles the hot projection shapes into a column kernel:
//
//   - $i                      (gather)
//   - literal                 (broadcast)
//   - $i ⊕ literal, literal ⊕ $i, $i ⊕ $j for ⊕ ∈ {+, -, *, /} with
//     int64/float64 fast paths and strict NULL propagation
//   - the same operand shapes under a comparison, producing a boolean column
func ArithKernel(n Node) (ColKernel, bool) {
	switch x := n.(type) {
	case *InputRef:
		i := x.Index
		return func(cols [][]any, sel []int32, out []any) error {
			col := cols[i]
			for k, r := range sel {
				out[k] = col[r]
			}
			return nil
		}, true
	case *Literal:
		v := x.Value
		return func(cols [][]any, sel []int32, out []any) error {
			for k := range sel {
				out[k] = v
			}
			return nil
		}, true
	case *Call:
		if len(x.Operands) != 2 {
			return nil, false
		}
		lhs, lok := operandGetter(x.Operands[0])
		rhs, rok := operandGetter(x.Operands[1])
		if !lok || !rok {
			return nil, false
		}
		if pred := cmpPred(x.Op); pred != nil {
			return func(cols [][]any, sel []int32, out []any) error {
				for k, ri := range sel {
					r := int(ri)
					a := lhs(cols, r)
					if a == nil {
						out[k] = nil
						continue
					}
					b := rhs(cols, r)
					if b == nil {
						out[k] = nil
						continue
					}
					if xa, ok := a.(int64); ok {
						if yb, ok := b.(int64); ok {
							switch {
							case xa < yb:
								out[k] = pred(-1)
							case xa > yb:
								out[k] = pred(1)
							default:
								out[k] = pred(0)
							}
							continue
						}
					}
					out[k] = pred(types.Compare(a, b))
				}
				return nil
			}, true
		}
		var sym byte
		switch x.Op {
		case OpPlus:
			sym = '+'
		case OpMinus:
			sym = '-'
		case OpTimes:
			sym = '*'
		case OpDivide:
			sym = '/'
		default:
			return nil, false
		}
		return func(cols [][]any, sel []int32, out []any) error {
			for k, ri := range sel {
				r := int(ri)
				a := lhs(cols, r)
				if a == nil {
					out[k] = nil
					continue
				}
				b := rhs(cols, r)
				if b == nil {
					out[k] = nil
					continue
				}
				v, err := arithValues(sym, a, b)
				if err != nil {
					return err
				}
				out[k] = v
			}
			return nil
		}, true
	}
	return nil, false
}

// operandGetter returns a direct value accessor for refs and literals.
func operandGetter(n Node) (func(cols [][]any, r int) any, bool) {
	switch x := n.(type) {
	case *InputRef:
		i := x.Index
		return func(cols [][]any, r int) any { return cols[i][r] }, true
	case *Literal:
		v := x.Value
		return func(cols [][]any, r int) any { return v }, true
	}
	return nil, false
}
