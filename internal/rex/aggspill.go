package rex

// Accumulator dehydration: the spillable-aggregation contract. A hash
// aggregate under memory pressure flushes its partial accumulator states to
// disk as plain runtime values (which the spill codec can encode), then
// hydrates them back and folds duplicates with MergeAccumulators when the
// partition is re-read. Dehydrate∘Hydrate is exact — counts, partial sums,
// extrema and collected values round-trip bit-for-bit — so spilling never
// changes aggregate results.

import (
	"fmt"

	"calcite/internal/types"
)

// DehydrateAccumulator flattens an accumulator's running state into a value
// tree of spillable runtime types ([]any, int64, float64, bool, …).
func DehydrateAccumulator(a Accumulator) (any, error) {
	switch s := a.(type) {
	case *aggState:
		return []any{
			"agg", s.count, s.sumF, s.sumI, s.floats, s.started,
			s.minV, s.maxV, append([]any(nil), s.values...),
		}, nil
	case *distinctState:
		inner, err := DehydrateAccumulator(s.inner)
		if err != nil {
			return nil, err
		}
		return []any{"distinct", inner, append([]any(nil), s.vals...)}, nil
	}
	return nil, fmt.Errorf("rex: accumulator %T does not support spilling", a)
}

// HydrateAccumulator rebuilds an accumulator of the given call from a
// dehydrated state.
func HydrateAccumulator(call AggCall, state any) (Accumulator, error) {
	parts, ok := state.([]any)
	if !ok || len(parts) == 0 {
		return nil, fmt.Errorf("rex: malformed accumulator state %T", state)
	}
	switch parts[0] {
	case "agg":
		if len(parts) != 9 {
			return nil, fmt.Errorf("rex: malformed aggState state (len %d)", len(parts))
		}
		s := &aggState{call: call}
		s.count, _ = parts[1].(int64)
		s.sumF, _ = parts[2].(float64)
		s.sumI, _ = parts[3].(int64)
		s.floats, _ = parts[4].(int64)
		s.started, _ = parts[5].(bool)
		s.minV = parts[6]
		s.maxV = parts[7]
		if vals, ok := parts[8].([]any); ok && len(vals) > 0 {
			s.values = append([]any(nil), vals...)
		}
		return s, nil
	case "distinct":
		if len(parts) != 3 {
			return nil, fmt.Errorf("rex: malformed distinctState state (len %d)", len(parts))
		}
		inner, err := HydrateAccumulator(call, parts[1])
		if err != nil {
			return nil, err
		}
		d := &distinctState{inner: inner, seen: map[string]bool{}}
		if vals, ok := parts[2].([]any); ok {
			for _, v := range vals {
				d.seen[types.HashKey(v)] = true
				d.vals = append(d.vals, v)
			}
		}
		return d, nil
	}
	return nil, fmt.Errorf("rex: unknown accumulator state kind %v", parts[0])
}

// AccumulatorMemSize estimates the retained bytes of an accumulator, for
// memory-budget accounting. Fixed state costs a flat constant; value-
// retaining aggregates (MIN/MAX over strings, COLLECT, DISTINCT) add the
// size of what they hold.
func AccumulatorMemSize(a Accumulator) int64 {
	switch s := a.(type) {
	case *aggState:
		n := int64(96)
		n += types.SizeOfValue(s.minV) + types.SizeOfValue(s.maxV)
		for _, v := range s.values {
			n += types.SizeOfValue(v)
		}
		return n
	case *distinctState:
		n := AccumulatorMemSize(s.inner) + 48
		for _, v := range s.vals {
			// Each distinct value is held twice: the ordered slice and the
			// seen-key map.
			n += 2 * types.SizeOfValue(v)
		}
		return n
	}
	return 128
}
