package rex

import (
	"reflect"
	"testing"
)

// feedRows drives an accumulator with single-column rows.
func feedRows(t *testing.T, acc Accumulator, vals ...any) {
	t.Helper()
	for _, v := range vals {
		if err := acc.Add([]any{v}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDehydrateHydrateRoundTrip: for every aggregate kind, a hydrated copy
// of a dehydrated accumulator must produce the same result and keep
// accepting input.
func TestDehydrateHydrateRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		call AggCall
		vals []any
	}{
		{"count", NewAggCall(AggCount, nil, false, "c"), []any{int64(1), int64(2), int64(3)}},
		{"sum-int", NewAggCall(AggSum, []int{0}, false, "s"), []any{int64(4), int64(5)}},
		{"sum-float", NewAggCall(AggSum, []int{0}, false, "s"), []any{1.25, nil, 2.5}},
		{"avg", NewAggCall(AggAvg, []int{0}, false, "a"), []any{2.0, 4.0, nil}},
		{"min", NewAggCall(AggMin, []int{0}, false, "m"), []any{"b", "a", "c"}},
		{"max", NewAggCall(AggMax, []int{0}, false, "m"), []any{int64(3), int64(9), int64(1)}},
		{"collect", NewAggCall(AggCollect, []int{0}, false, "col"), []any{int64(1), int64(1), int64(2)}},
		{"single", NewAggCall(AggSingleValue, []int{0}, false, "sv"), []any{"only"}},
		{"count-distinct", NewAggCall(AggCount, []int{0}, true, "cd"), []any{int64(1), int64(1), int64(2), nil}},
		{"sum-distinct", NewAggCall(AggSum, []int{0}, true, "sd"), []any{2.5, 2.5, 1.25}},
		{"empty", NewAggCall(AggSum, []int{0}, false, "s"), nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			acc := NewAccumulator(c.call)
			feedRows(t, acc, c.vals...)
			st, err := DehydrateAccumulator(acc)
			if err != nil {
				t.Fatalf("dehydrate: %v", err)
			}
			back, err := HydrateAccumulator(c.call, st)
			if err != nil {
				t.Fatalf("hydrate: %v", err)
			}
			if got, want := back.Result(), acc.Result(); !reflect.DeepEqual(got, want) {
				t.Fatalf("result after round-trip = %#v, want %#v", got, want)
			}
			// Hydrated state must keep accumulating (the re-merge path adds
			// later partials into it). SINGLE_VALUE rightly errors on a
			// second value, so it is exempt.
			if len(c.vals) > 0 && c.call.Func != AggSingleValue {
				other := NewAccumulator(c.call)
				feedRows(t, other, c.vals[0])
				if err := MergeAccumulators(back, other); err != nil {
					t.Fatalf("merge into hydrated: %v", err)
				}
				ref := NewAccumulator(c.call)
				feedRows(t, ref, c.vals...)
				feedRows(t, ref, c.vals[0])
				// DISTINCT re-merge deduplicates, so the reference must too.
				if got, want := back.Result(), ref.Result(); !reflect.DeepEqual(got, want) {
					t.Fatalf("post-merge result = %#v, want %#v", got, want)
				}
			}
		})
	}
}

// TestHydratedDistinctDeduplicatesAcrossSpills: values flushed in one
// partial and re-fed in another must still count once.
func TestHydratedDistinctDeduplicatesAcrossSpills(t *testing.T) {
	call := NewAggCall(AggCount, []int{0}, true, "cd")
	first := NewAccumulator(call)
	feedRows(t, first, int64(1), int64(2))
	st, err := DehydrateAccumulator(first)
	if err != nil {
		t.Fatal(err)
	}
	back, err := HydrateAccumulator(call, st)
	if err != nil {
		t.Fatal(err)
	}
	second := NewAccumulator(call)
	feedRows(t, second, int64(2), int64(3)) // 2 duplicates across "spills"
	if err := MergeAccumulators(back, second); err != nil {
		t.Fatal(err)
	}
	if got := back.Result(); got != int64(3) {
		t.Fatalf("distinct count = %v, want 3", got)
	}
}

func TestAccumulatorMemSizeGrowsWithRetention(t *testing.T) {
	call := NewAggCall(AggCollect, []int{0}, false, "col")
	acc := NewAccumulator(call)
	before := AccumulatorMemSize(acc)
	feedRows(t, acc, "some value", "another value", "a third value")
	if after := AccumulatorMemSize(acc); after <= before {
		t.Fatalf("mem size did not grow: %d -> %d", before, after)
	}
}
