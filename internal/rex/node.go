// Package rex implements row expressions: the scalar expression trees that
// appear inside relational operators (filter conditions, projections, join
// predicates, window specifications). It corresponds to Calcite's RexNode
// layer and includes the operator table, an interpreter, and an algebraic
// simplifier used by the reduce-expressions planner rules.
package rex

import (
	"fmt"
	"strings"

	"calcite/internal/types"
)

// Node is a row expression. Implementations are immutable.
type Node interface {
	// Type returns the static type of the expression.
	Type() *types.Type
	// String returns the canonical digest of the expression, used for plan
	// digests and equivalence detection in the planner.
	String() string
}

// InputRef references a column of the input row by ordinal, printed as "$n".
type InputRef struct {
	Index int
	T     *types.Type
}

// NewInputRef returns a reference to input field index with the given type.
func NewInputRef(index int, t *types.Type) *InputRef {
	return &InputRef{Index: index, T: t}
}

func (r *InputRef) Type() *types.Type { return r.T }
func (r *InputRef) String() string    { return fmt.Sprintf("$%d", r.Index) }

// Literal is a constant value.
type Literal struct {
	Value any
	T     *types.Type
}

// NewLiteral returns a literal of the given type.
func NewLiteral(v any, t *types.Type) *Literal { return &Literal{Value: v, T: t} }

// Bool, Int, Float, Str, Null are literal shorthands.
func Bool(b bool) *Literal     { return NewLiteral(b, types.Boolean) }
func Int(i int64) *Literal     { return NewLiteral(i, types.BigInt) }
func Float(f float64) *Literal { return NewLiteral(f, types.Double) }
func Str(s string) *Literal    { return NewLiteral(s, types.Varchar) }
func Null() *Literal           { return NewLiteral(nil, types.Null) }
func Timestamp(ms int64) *Literal {
	return NewLiteral(ms, types.Timestamp)
}

func (l *Literal) Type() *types.Type { return l.T }
func (l *Literal) String() string {
	if l.Value == nil {
		return "NULL"
	}
	if s, ok := l.Value.(string); ok {
		return "'" + strings.ReplaceAll(s, "'", "''") + "'"
	}
	return types.FormatValue(l.Value)
}

// Call applies an operator to operands.
type Call struct {
	Op       *Operator
	Operands []Node
	T        *types.Type
}

// NewCall builds a call whose type is inferred by the operator; use
// NewCallTyped to override (e.g. CAST).
func NewCall(op *Operator, operands ...Node) *Call {
	t := types.Any
	if op.infer != nil {
		t = op.infer(operands)
	}
	return &Call{Op: op, Operands: operands, T: t}
}

// NewCallTyped builds a call with an explicit result type.
func NewCallTyped(op *Operator, t *types.Type, operands ...Node) *Call {
	return &Call{Op: op, Operands: operands, T: t}
}

func (c *Call) Type() *types.Type { return c.T }

func (c *Call) String() string {
	args := make([]string, len(c.Operands))
	for i, o := range c.Operands {
		args[i] = o.String()
	}
	switch {
	case c.Op == OpCast:
		return fmt.Sprintf("CAST(%s AS %s)", args[0], c.T)
	case c.Op.Kind == KindBinary && len(args) == 2:
		return fmt.Sprintf("%s(%s, %s)", c.Op.Name, args[0], args[1])
	default:
		return fmt.Sprintf("%s(%s)", c.Op.Name, strings.Join(args, ", "))
	}
}

// DynamicParam is a prepared-statement placeholder ("?"), printed as "?n".
type DynamicParam struct {
	Index int
	T     *types.Type
}

func (p *DynamicParam) Type() *types.Type { return p.T }
func (p *DynamicParam) String() string    { return fmt.Sprintf("?%d", p.Index) }

// CorrelVariable references the row of an enclosing query (used by
// correlated subqueries; kept minimal in this reproduction).
type CorrelVariable struct {
	Name string
	T    *types.Type
}

func (v *CorrelVariable) Type() *types.Type { return v.T }
func (v *CorrelVariable) String() string    { return "$cor." + v.Name }

// Walk visits n and every sub-expression in pre-order; the visit function
// returns false to prune descent.
func Walk(n Node, visit func(Node) bool) {
	if n == nil || !visit(n) {
		return
	}
	if c, ok := n.(*Call); ok {
		for _, o := range c.Operands {
			Walk(o, visit)
		}
	}
}

// InputBitmap returns the set of input ordinals referenced by n.
func InputBitmap(n Node) map[int]bool {
	refs := map[int]bool{}
	Walk(n, func(x Node) bool {
		if r, ok := x.(*InputRef); ok {
			refs[r.Index] = true
		}
		return true
	})
	return refs
}

// MaxInputRef returns the highest input ordinal referenced, or -1.
func MaxInputRef(n Node) int {
	max := -1
	Walk(n, func(x Node) bool {
		if r, ok := x.(*InputRef); ok && r.Index > max {
			max = r.Index
		}
		return true
	})
	return max
}

// Shift returns a copy of n with every input reference shifted by delta.
func Shift(n Node, delta int) Node {
	return Transform(n, func(x Node) Node {
		if r, ok := x.(*InputRef); ok {
			return NewInputRef(r.Index+delta, r.T)
		}
		return x
	})
}

// Remap returns a copy of n with input references rewritten through mapping;
// references absent from the mapping are preserved.
func Remap(n Node, mapping map[int]int) Node {
	return Transform(n, func(x Node) Node {
		if r, ok := x.(*InputRef); ok {
			if to, ok := mapping[r.Index]; ok {
				return NewInputRef(to, r.T)
			}
		}
		return x
	})
}

// Transform rewrites an expression bottom-up. fn receives each node after
// its operands were rewritten and returns the replacement.
func Transform(n Node, fn func(Node) Node) Node {
	if c, ok := n.(*Call); ok {
		ops := make([]Node, len(c.Operands))
		changed := false
		for i, o := range c.Operands {
			ops[i] = Transform(o, fn)
			if ops[i] != o {
				changed = true
			}
		}
		if changed {
			n = &Call{Op: c.Op, Operands: ops, T: c.T}
		}
	}
	return fn(n)
}

// Substitute replaces input references using exprs: reference $i becomes
// exprs[i]. Used when merging projections.
func Substitute(n Node, exprs []Node) Node {
	return Transform(n, func(x Node) Node {
		if r, ok := x.(*InputRef); ok && r.Index < len(exprs) {
			return exprs[r.Index]
		}
		return x
	})
}

// Conjuncts flattens a boolean expression into its top-level AND terms.
func Conjuncts(n Node) []Node {
	if n == nil {
		return nil
	}
	if c, ok := n.(*Call); ok && c.Op == OpAnd {
		var out []Node
		for _, o := range c.Operands {
			out = append(out, Conjuncts(o)...)
		}
		return out
	}
	if l, ok := n.(*Literal); ok {
		if b, ok := l.Value.(bool); ok && b {
			return nil // TRUE contributes nothing
		}
	}
	return []Node{n}
}

// And builds the conjunction of the given terms (TRUE for none, the sole
// term for one).
func And(terms ...Node) Node {
	var flat []Node
	for _, t := range terms {
		if t == nil {
			continue
		}
		flat = append(flat, Conjuncts(t)...)
	}
	switch len(flat) {
	case 0:
		return Bool(true)
	case 1:
		return flat[0]
	}
	return NewCall(OpAnd, flat...)
}

// Or builds the disjunction of the given terms.
func Or(terms ...Node) Node {
	switch len(terms) {
	case 0:
		return Bool(false)
	case 1:
		return terms[0]
	}
	return NewCall(OpOr, terms...)
}

// Eq builds an equality comparison.
func Eq(a, b Node) Node { return NewCall(OpEquals, a, b) }

// IsAlwaysTrue reports whether n is the literal TRUE.
func IsAlwaysTrue(n Node) bool {
	l, ok := n.(*Literal)
	if !ok {
		return false
	}
	b, ok := l.Value.(bool)
	return ok && b
}

// IsAlwaysFalse reports whether n is the literal FALSE.
func IsAlwaysFalse(n Node) bool {
	l, ok := n.(*Literal)
	if !ok {
		return false
	}
	b, ok := l.Value.(bool)
	return ok && !b
}

// IsConstant reports whether n contains no input references, parameters or
// correlation variables.
func IsConstant(n Node) bool {
	ok := true
	Walk(n, func(x Node) bool {
		switch x.(type) {
		case *InputRef, *DynamicParam, *CorrelVariable:
			ok = false
			return false
		}
		return true
	})
	return ok
}

// IsIdentityProjection reports whether exprs is exactly $0..$n-1 over an
// input with n fields.
func IsIdentityProjection(exprs []Node, inputFieldCount int) bool {
	if len(exprs) != inputFieldCount {
		return false
	}
	for i, e := range exprs {
		r, ok := e.(*InputRef)
		if !ok || r.Index != i {
			return false
		}
	}
	return true
}
