package rex

import (
	"fmt"
	"strings"

	"calcite/internal/types"
)

// AggFuncKind enumerates the built-in aggregate functions.
type AggFuncKind int

const (
	AggCount AggFuncKind = iota
	AggSum
	AggMin
	AggMax
	AggAvg
	AggCollect     // gathers values into a MULTISET
	AggSingleValue // asserts exactly one input value (scalar subqueries)

	// Window-only (ranking/navigation) functions. They are positional over
	// an ordered partition rather than folds over a frame, so they resolve
	// through LookupWindowFunc only — a GROUP BY aggregate can never name
	// them.
	AggRowNumber
	AggRank
	AggDenseRank
	AggLag
	AggLead
)

var aggNames = map[AggFuncKind]string{
	AggCount:       "COUNT",
	AggSum:         "SUM",
	AggMin:         "MIN",
	AggMax:         "MAX",
	AggAvg:         "AVG",
	AggCollect:     "COLLECT",
	AggSingleValue: "SINGLE_VALUE",
}

// winOnlyNames are the functions valid only under an OVER clause.
var winOnlyNames = map[AggFuncKind]string{
	AggRowNumber: "ROW_NUMBER",
	AggRank:      "RANK",
	AggDenseRank: "DENSE_RANK",
	AggLag:       "LAG",
	AggLead:      "LEAD",
}

func (k AggFuncKind) String() string {
	if n, ok := aggNames[k]; ok {
		return n
	}
	return winOnlyNames[k]
}

// WindowOnly reports whether k is a ranking/navigation function that is only
// meaningful under an OVER clause.
func (k AggFuncKind) WindowOnly() bool {
	_, ok := winOnlyNames[k]
	return ok
}

// LookupAggFunc resolves an aggregate function name.
func LookupAggFunc(name string) (AggFuncKind, bool) {
	for k, n := range aggNames {
		if strings.EqualFold(n, name) {
			return k, true
		}
	}
	return 0, false
}

// LookupWindowFunc resolves a function name usable under an OVER clause:
// every aggregate plus the ranking/navigation functions.
func LookupWindowFunc(name string) (AggFuncKind, bool) {
	if k, ok := LookupAggFunc(name); ok {
		return k, true
	}
	for k, n := range winOnlyNames {
		if strings.EqualFold(n, name) {
			return k, true
		}
	}
	return 0, false
}

// AggCall describes one aggregate computation of an Aggregate operator:
// the function, its argument ordinals into the input row (empty for
// COUNT(*)), DISTINCT-ness, and the output field name.
type AggCall struct {
	Func     AggFuncKind
	Args     []int
	Distinct bool
	Name     string
	// FilterArg, when >= 0, is the ordinal of a boolean input column gating
	// which rows the aggregate sees (FILTER clause). -1 means no filter.
	FilterArg int
}

// NewAggCall returns an AggCall with no filter.
func NewAggCall(f AggFuncKind, args []int, distinct bool, name string) AggCall {
	return AggCall{Func: f, Args: args, Distinct: distinct, Name: name, FilterArg: -1}
}

// ResultType computes the aggregate's result type from its input field types.
func (a AggCall) ResultType(inputFields []types.Field) *types.Type {
	switch a.Func {
	case AggCount:
		return types.BigInt
	case AggAvg:
		return types.Double.WithNullable(true)
	case AggSum, AggMin, AggMax, AggSingleValue:
		if len(a.Args) > 0 && a.Args[0] < len(inputFields) {
			return inputFields[a.Args[0]].Type.WithNullable(true)
		}
		return types.Any
	case AggCollect:
		elem := types.Any
		if len(a.Args) > 0 && a.Args[0] < len(inputFields) {
			elem = inputFields[a.Args[0]].Type
		}
		return types.Multiset(elem)
	case AggRowNumber, AggRank, AggDenseRank:
		return types.BigInt
	case AggLag, AggLead:
		if len(a.Args) > 0 && a.Args[0] < len(inputFields) {
			return inputFields[a.Args[0]].Type.WithNullable(true)
		}
		return types.Any
	}
	return types.Any
}

// String renders the call for digests, e.g. "SUM(DISTINCT $2)".
func (a AggCall) String() string {
	var b strings.Builder
	b.WriteString(a.Func.String())
	b.WriteByte('(')
	if a.Distinct {
		b.WriteString("DISTINCT ")
	}
	if len(a.Args) == 0 {
		if a.Func == AggCount {
			b.WriteByte('*')
		}
	} else {
		for i, arg := range a.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "$%d", arg)
		}
	}
	b.WriteByte(')')
	if a.FilterArg >= 0 {
		fmt.Fprintf(&b, " FILTER $%d", a.FilterArg)
	}
	return b.String()
}

// Accumulator is the running state of one aggregate over one group.
type Accumulator interface {
	// Add feeds one input row.
	Add(row []any) error
	// Result returns the aggregate value for the group.
	Result() any
}

// Retractable is an accumulator that can remove a previously Added row —
// the incremental-frame hook of the window operator: a sliding frame
// evaluates in O(n) per partition by adding entering rows and retracting
// departing ones instead of recomputing every frame from scratch (the
// FO+MOD-style maintenance-under-updates of Berkholz et al.).
type Retractable interface {
	Accumulator
	// Retract removes one row previously fed to Add. Retracting a row that
	// was never added is undefined.
	Retract(row []any) error
}

// CanRetract reports whether the call's accumulator supports retraction
// (SUM/COUNT/AVG without DISTINCT). MIN/MAX slide via a monotonic deque in
// the window operator; everything else falls back to per-frame recompute.
func CanRetract(a AggCall) bool {
	if a.Distinct {
		return false
	}
	switch a.Func {
	case AggSum, AggCount, AggAvg:
		return true
	}
	return false
}

// MergeAccumulators folds src into dst — the partial→final combine step of
// parallel aggregation: workers pre-aggregate thread-locally, then the final
// stage merges the per-worker states of each group.
func MergeAccumulators(dst, src Accumulator) error {
	switch d := dst.(type) {
	case *aggState:
		s, ok := src.(*aggState)
		if !ok {
			return fmt.Errorf("rex: cannot merge %T into %T", src, dst)
		}
		return d.merge(s)
	case *distinctState:
		s, ok := src.(*distinctState)
		if !ok {
			return fmt.Errorf("rex: cannot merge %T into %T", src, dst)
		}
		return d.merge(s)
	}
	return fmt.Errorf("rex: accumulator %T does not support merging", dst)
}

// NewAccumulator creates the accumulator for an aggregate call.
func NewAccumulator(a AggCall) Accumulator {
	base := &aggState{call: a}
	if a.Distinct {
		return &distinctState{inner: base, seen: map[string]bool{}}
	}
	return base
}

type aggState struct {
	call  AggCall
	count int64
	sumF  float64
	sumI  int64
	// floats counts the non-integer values currently contributing to the
	// sums. Integer values always feed both sums, so when every float has
	// been retracted from a sliding frame (floats back to 0) the exact
	// integer sum is still on hand — SUM's result type follows the live
	// frame contents, matching a from-scratch recompute.
	floats  int64
	started bool
	minV    any
	maxV    any
	values  []any
	err     error
}

func (s *aggState) Add(row []any) error {
	if s.call.FilterArg >= 0 {
		keep, _ := row[s.call.FilterArg].(bool)
		if !keep {
			return nil
		}
	}
	if len(s.call.Args) == 0 { // COUNT(*)
		s.count++
		return nil
	}
	v := row[s.call.Args[0]]
	if v == nil {
		return nil // aggregates ignore NULLs
	}
	if !s.started {
		s.started = true
		s.minV, s.maxV = v, v
	}
	s.count++
	switch s.call.Func {
	case AggSum, AggAvg:
		if i, ok := v.(int64); ok {
			s.sumI += i
			s.sumF += float64(i)
		} else {
			f, ok := types.AsFloat(v)
			if !ok {
				return fmt.Errorf("rex: %s over non-numeric %T", s.call.Func, v)
			}
			s.floats++
			s.sumF += f
		}
	case AggMin:
		if types.Compare(v, s.minV) < 0 {
			s.minV = v
		}
	case AggMax:
		if types.Compare(v, s.maxV) > 0 {
			s.maxV = v
		}
	case AggCollect:
		s.values = append(s.values, v)
	case AggSingleValue:
		s.values = append(s.values, v)
		if len(s.values) > 1 {
			return fmt.Errorf("rex: subquery returned more than one value")
		}
	}
	return nil
}

func (s *aggState) Result() any {
	switch s.call.Func {
	case AggCount:
		return s.count
	case AggSum:
		if !s.started {
			return nil
		}
		if s.floats == 0 {
			return s.sumI
		}
		return s.sumF
	case AggAvg:
		if s.count == 0 {
			return nil
		}
		return s.sumF / float64(s.count)
	case AggMin:
		return s.minV
	case AggMax:
		return s.maxV
	case AggCollect:
		return append([]any(nil), s.values...)
	case AggSingleValue:
		if len(s.values) == 0 {
			return nil
		}
		return s.values[0]
	}
	return nil
}

// Retract removes one previously Added row (SUM/COUNT/AVG only). When the
// last row leaves, the state resets to pristine so SUM over an empty frame
// is NULL again and integer sums recover exactness for later frames.
func (s *aggState) Retract(row []any) error {
	if s.call.FilterArg >= 0 {
		keep, _ := row[s.call.FilterArg].(bool)
		if !keep {
			return nil
		}
	}
	if len(s.call.Args) == 0 { // COUNT(*)
		if s.call.Func != AggCount {
			return fmt.Errorf("rex: %s does not support retraction", s.call.Func)
		}
		s.count--
		return nil
	}
	v := row[s.call.Args[0]]
	if v == nil {
		return nil // NULLs were never added
	}
	switch s.call.Func {
	case AggSum, AggAvg:
		// Mirror Add exactly, so every retraction undoes precisely what the
		// matching Add contributed.
		if i, ok := v.(int64); ok {
			s.sumI -= i
			s.sumF -= float64(i)
		} else {
			f, ok := types.AsFloat(v)
			if !ok {
				return fmt.Errorf("rex: %s over non-numeric %T", s.call.Func, v)
			}
			s.floats--
			s.sumF -= f
		}
	case AggCount:
	default:
		return fmt.Errorf("rex: %s does not support retraction", s.call.Func)
	}
	s.count--
	if s.count == 0 {
		s.started = false
		s.sumI, s.sumF = 0, 0
		s.floats = 0
	}
	return nil
}

// merge folds another partial aggState of the same call into s.
func (s *aggState) merge(o *aggState) error {
	if o.call.Func != s.call.Func {
		return fmt.Errorf("rex: cannot merge %s into %s", o.call.Func, s.call.Func)
	}
	s.count += o.count
	if !o.started {
		return nil
	}
	if !s.started {
		s.started = true
		s.floats = o.floats
		s.sumI, s.sumF = o.sumI, o.sumF
		s.minV, s.maxV = o.minV, o.maxV
		s.values = append(s.values, o.values...)
		if s.call.Func == AggSingleValue && len(s.values) > 1 {
			return fmt.Errorf("rex: subquery returned more than one value")
		}
		return nil
	}
	switch s.call.Func {
	case AggSum, AggAvg:
		s.floats += o.floats
		s.sumI += o.sumI
		s.sumF += o.sumF
	case AggMin:
		if types.Compare(o.minV, s.minV) < 0 {
			s.minV = o.minV
		}
	case AggMax:
		if types.Compare(o.maxV, s.maxV) > 0 {
			s.maxV = o.maxV
		}
	case AggCollect:
		s.values = append(s.values, o.values...)
	case AggSingleValue:
		s.values = append(s.values, o.values...)
		if len(s.values) > 1 {
			return fmt.Errorf("rex: subquery returned more than one value")
		}
	}
	return nil
}

type distinctState struct {
	inner Accumulator
	call  AggCall
	seen  map[string]bool
	// vals retains the distinct values in first-seen order so partial
	// accumulators can be merged (cross-worker duplicates deduplicated).
	vals []any
}

func (d *distinctState) Add(row []any) error {
	s := d.inner.(*aggState)
	if s.call.FilterArg >= 0 {
		// Filter before dedup: a filtered-out row must not mark its value
		// seen (it never reached the aggregate), or a later passing row
		// with the same value would be dropped.
		if keep, _ := row[s.call.FilterArg].(bool); !keep {
			return nil
		}
	}
	if len(s.call.Args) > 0 {
		v := row[s.call.Args[0]]
		if v == nil {
			return nil
		}
		k := types.HashKey(v)
		if d.seen[k] {
			return nil
		}
		d.seen[k] = true
		d.vals = append(d.vals, v)
	}
	return d.inner.Add(row)
}

// merge folds another partial distinct accumulator into d: values unseen so
// far are replayed through the inner accumulator, so duplicates that landed
// in different worker partitions are counted once.
func (d *distinctState) merge(o *distinctState) error {
	s := d.inner.(*aggState)
	if len(s.call.Args) == 0 {
		os := o.inner.(*aggState)
		return s.merge(os)
	}
	width := s.call.Args[0] + 1
	if s.call.FilterArg >= width {
		width = s.call.FilterArg + 1
	}
	row := make([]any, width)
	if s.call.FilterArg >= 0 {
		// The value already passed the partial side's filter; re-admit it.
		row[s.call.FilterArg] = true
	}
	for _, v := range o.vals {
		k := types.HashKey(v)
		if d.seen[k] {
			continue
		}
		d.seen[k] = true
		d.vals = append(d.vals, v)
		row[s.call.Args[0]] = v
		if err := d.inner.Add(row); err != nil {
			return err
		}
	}
	return nil
}

func (d *distinctState) Result() any { return d.inner.Result() }
