package rex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"calcite/internal/types"
)

func eval(t *testing.T, n Node, row []any) any {
	t.Helper()
	var ev Evaluator
	v, err := ev.Eval(n, row)
	if err != nil {
		t.Fatalf("eval %s: %v", n, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	row := []any{int64(6), 2.5}
	a := NewInputRef(0, types.BigInt)
	b := NewInputRef(1, types.Double)
	if got := eval(t, NewCall(OpPlus, a, Int(4)), row); got != int64(10) {
		t.Errorf("6+4 = %v", got)
	}
	if got := eval(t, NewCall(OpTimes, a, b), row); got != 15.0 {
		t.Errorf("6*2.5 = %v", got)
	}
	if _, err := EvalConstant(NewCall(OpDivide, Int(1), Int(0))); err == nil {
		t.Error("division by zero should error")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	null := Null()
	tru, fls := Bool(true), Bool(false)
	var ev Evaluator
	check := func(n Node, want any) {
		t.Helper()
		v, err := ev.Eval(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Errorf("%s = %v, want %v", n, v, want)
		}
	}
	check(NewCall(OpAnd, tru, null), nil)
	check(NewCall(OpAnd, fls, null), false)
	check(NewCall(OpOr, tru, null), true)
	check(NewCall(OpOr, fls, null), nil)
	check(NewCall(OpNot, null), nil) // strict
	check(NewCall(OpIsNull, null), true)
	check(NewCall(OpIsNotNull, null), false)
	check(NewCall(OpEquals, null, Int(1)), nil)
}

func TestCaseAndCoalesce(t *testing.T) {
	c := NewCall(OpCase, Bool(false), Str("a"), Bool(true), Str("b"), Str("c"))
	if got, _ := EvalConstant(c); got != "b" {
		t.Errorf("case = %v", got)
	}
	co := NewCall(OpCoalesce, Null(), Null(), Int(7))
	if got, _ := EvalConstant(co); got != int64(7) {
		t.Errorf("coalesce = %v", got)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h_l", false},
		{"", "%", true},
		{"abc", "abc", true},
		{"abc", "a%c%", true},
	}
	for _, c := range cases {
		got, _ := EvalConstant(NewCall(OpLike, Str(c.s), Str(c.p)))
		if got != c.want {
			t.Errorf("LIKE(%q, %q) = %v", c.s, c.p, got)
		}
	}
}

func TestItemOperator(t *testing.T) {
	row := []any{map[string]any{"city": "PARIS", "loc": []any{4.9, 52.3}}}
	m := NewInputRef(0, types.Map(types.Varchar, types.Any))
	city := NewCall(OpItem, m, Str("city"))
	if got := eval(t, city, row); got != "PARIS" {
		t.Errorf("_MAP['city'] = %v", got)
	}
	lon := NewCall(OpItem, NewCall(OpItem, m, Str("loc")), Int(0))
	if got := eval(t, lon, row); got != 4.9 {
		t.Errorf("_MAP['loc'][0] = %v", got)
	}
	missing := NewCall(OpItem, m, Str("nope"))
	if got := eval(t, missing, row); got != nil {
		t.Errorf("missing key = %v", got)
	}
}

// randomBoolExpr builds a random boolean expression over 3 int columns.
func randomBoolExpr(r *rand.Rand, depth int) Node {
	if depth <= 0 || r.Intn(3) == 0 {
		ops := []*Operator{OpEquals, OpLess, OpGreater, OpLessEqual, OpGreaterEqual, OpNotEquals}
		return NewCall(ops[r.Intn(len(ops))],
			NewInputRef(r.Intn(3), types.BigInt),
			Int(int64(r.Intn(10))))
	}
	switch r.Intn(3) {
	case 0:
		return NewCall(OpAnd, randomBoolExpr(r, depth-1), randomBoolExpr(r, depth-1))
	case 1:
		return NewCall(OpOr, randomBoolExpr(r, depth-1), randomBoolExpr(r, depth-1))
	default:
		return NewCall(OpNot, randomBoolExpr(r, depth-1))
	}
}

// Property: Simplify preserves evaluation on every row (the invariant behind
// the ReduceExpressions rules).
func TestSimplifyPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var ev Evaluator
	for i := 0; i < 500; i++ {
		expr := randomBoolExpr(r, 4)
		simplified := Simplify(expr)
		for trial := 0; trial < 10; trial++ {
			row := []any{int64(r.Intn(10)), int64(r.Intn(10)), int64(r.Intn(10))}
			v1, err1 := ev.Eval(expr, row)
			v2, err2 := ev.Eval(simplified, row)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("error mismatch for %s vs %s", expr, simplified)
			}
			if v1 != v2 {
				t.Fatalf("simplify changed semantics:\n  %s = %v\n  %s = %v\n  row %v",
					expr, v1, simplified, v2, row)
			}
		}
	}
}

// Property: Conjuncts(And(terms)) flattens back to the same terms.
func TestConjunctsRoundTrip(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%5) + 1
		terms := make([]Node, count)
		for i := range terms {
			terms[i] = NewCall(OpEquals, NewInputRef(i, types.BigInt), Int(int64(i)))
		}
		flat := Conjuncts(And(terms...))
		if len(flat) != count {
			return false
		}
		for i := range flat {
			if flat[i].String() != terms[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftRemapSubstitute(t *testing.T) {
	e := NewCall(OpPlus, NewInputRef(1, types.BigInt), NewInputRef(3, types.BigInt))
	shifted := Shift(e, 10)
	if MaxInputRef(shifted) != 13 {
		t.Errorf("shift: %s", shifted)
	}
	remapped := Remap(e, map[int]int{1: 0, 3: 1})
	refs := InputBitmap(remapped)
	if !refs[0] || !refs[1] || len(refs) != 2 {
		t.Errorf("remap: %s", remapped)
	}
	sub := Substitute(NewInputRef(0, types.BigInt), []Node{Int(99)})
	if got, _ := EvalConstant(sub); got != int64(99) {
		t.Errorf("substitute: %v", got)
	}
}

func TestAggAccumulators(t *testing.T) {
	rows := [][]any{{int64(1)}, {int64(3)}, {nil}, {int64(3)}}
	check := func(call AggCall, want any) {
		t.Helper()
		acc := NewAccumulator(call)
		for _, r := range rows {
			if err := acc.Add(r); err != nil {
				t.Fatal(err)
			}
		}
		if got := acc.Result(); types.Compare(got, want) != 0 {
			t.Errorf("%s = %v, want %v", call, got, want)
		}
	}
	check(NewAggCall(AggCount, nil, false, "c"), int64(4))      // COUNT(*)
	check(NewAggCall(AggCount, []int{0}, false, "c"), int64(3)) // ignores NULL
	check(NewAggCall(AggSum, []int{0}, false, "s"), int64(7))
	check(NewAggCall(AggSum, []int{0}, true, "s"), int64(4)) // DISTINCT
	check(NewAggCall(AggMin, []int{0}, false, "m"), int64(1))
	check(NewAggCall(AggMax, []int{0}, false, "m"), int64(3))
	check(NewAggCall(AggCount, []int{0}, true, "c"), int64(2))

	avg := NewAccumulator(NewAggCall(AggAvg, []int{0}, false, "a"))
	for _, r := range rows {
		avg.Add(r)
	}
	if got := avg.Result(); got != 7.0/3.0 {
		t.Errorf("avg = %v", got)
	}
	// SUM over empty input is NULL.
	empty := NewAccumulator(NewAggCall(AggSum, []int{0}, false, "s"))
	if empty.Result() != nil {
		t.Error("SUM() over nothing should be NULL")
	}
}

func TestNegateMirror(t *testing.T) {
	if Negate(OpLess) != OpGreaterEqual || Negate(OpEquals) != OpNotEquals {
		t.Error("Negate wrong")
	}
	if Mirror(OpLess) != OpGreater || Mirror(OpEquals) != OpEquals {
		t.Error("Mirror wrong")
	}
	if Negate(OpPlus) != nil {
		t.Error("Negate of non-comparison should be nil")
	}
}

func TestLookupFunction(t *testing.T) {
	if _, ok := LookupFunction("upper"); !ok {
		t.Error("UPPER should be registered")
	}
	if _, ok := LookupFunction("st_contains"); !ok {
		t.Error("ST_CONTAINS should be registered")
	}
	if _, ok := LookupFunction("nope"); ok {
		t.Error("unknown function should miss")
	}
}
