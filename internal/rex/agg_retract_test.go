package rex

import "testing"

func TestRetractSum(t *testing.T) {
	acc := NewAccumulator(NewAggCall(AggSum, []int{0}, false, "s")).(Retractable)
	feedRows(t, acc, int64(3), int64(5), nil, int64(7))
	if got := acc.Result(); got != int64(15) {
		t.Fatalf("sum = %v", got)
	}
	if err := acc.Retract([]any{int64(3)}); err != nil {
		t.Fatal(err)
	}
	if err := acc.Retract([]any{nil}); err != nil {
		t.Fatal(err)
	}
	if got := acc.Result(); got != int64(12) {
		t.Fatalf("sum after retract = %v", got)
	}
	// Drain the window completely: SUM over an empty frame is NULL, and a
	// later Add starts from a pristine (exact integer) state.
	for _, v := range []int64{5, 7} {
		if err := acc.Retract([]any{v}); err != nil {
			t.Fatal(err)
		}
	}
	if got := acc.Result(); got != nil {
		t.Fatalf("sum over empty frame = %v, want NULL", got)
	}
	feedRows(t, acc, int64(2))
	if got := acc.Result(); got != int64(2) {
		t.Fatalf("sum after refill = %v", got)
	}
}

func TestRetractMixedIntFloatSum(t *testing.T) {
	acc := NewAccumulator(NewAggCall(AggSum, []int{0}, false, "s")).(Retractable)
	feedRows(t, acc, int64(3), 1.5)
	if err := acc.Retract([]any{int64(3)}); err != nil {
		t.Fatal(err)
	}
	if got := acc.Result(); got != 1.5 {
		t.Fatalf("sum = %v", got)
	}
	// Once the last float leaves the frame, the result type must recover to
	// an exact integer — matching what a from-scratch recompute of the
	// remaining frame contents would produce.
	feedRows(t, acc, int64(7))
	if err := acc.Retract([]any{1.5}); err != nil {
		t.Fatal(err)
	}
	if got := acc.Result(); got != int64(7) {
		t.Fatalf("sum after floats drained = %v (%T), want int64(7)", got, got)
	}
}

func TestRetractCountAvgAndFilter(t *testing.T) {
	call := NewAggCall(AggCount, nil, false, "c")
	call.FilterArg = 1
	acc := NewAccumulator(call).(Retractable)
	if err := acc.Add([]any{int64(1), true}); err != nil {
		t.Fatal(err)
	}
	if err := acc.Add([]any{int64(2), false}); err != nil {
		t.Fatal(err)
	}
	// Retract must apply the same filter: the false row never counted.
	if err := acc.Retract([]any{int64(2), false}); err != nil {
		t.Fatal(err)
	}
	if got := acc.Result(); got != int64(1) {
		t.Fatalf("count = %v", got)
	}

	avg := NewAccumulator(NewAggCall(AggAvg, []int{0}, false, "a")).(Retractable)
	feedRows(t, avg, int64(2), int64(4), int64(9))
	if err := avg.Retract([]any{int64(9)}); err != nil {
		t.Fatal(err)
	}
	if got := avg.Result(); got != 3.0 {
		t.Fatalf("avg = %v", got)
	}
}

func TestRetractUnsupported(t *testing.T) {
	for _, kind := range []AggFuncKind{AggMin, AggMax, AggCollect, AggSingleValue} {
		acc := NewAccumulator(NewAggCall(kind, []int{0}, false, "x"))
		feedRows(t, acc, int64(1))
		if err := acc.(Retractable).Retract([]any{int64(1)}); err == nil {
			t.Errorf("%s: expected retraction error", kind)
		}
	}
	if CanRetract(NewAggCall(AggSum, []int{0}, true, "d")) {
		t.Error("DISTINCT SUM must not claim retraction support")
	}
	if !CanRetract(NewAggCall(AggAvg, []int{0}, false, "a")) {
		t.Error("AVG should support retraction")
	}
}
