package rex

// Typed accumulator fast paths: per-value Add entry points that skip the row
// indexing, the nil check and the interface unboxing of Accumulator.Add when
// the caller already holds the value in machine-typed form (a typed vector
// column). They mutate exactly the state the boxed Add would, so Result,
// Retract, merge and the spill hydration all see an indistinguishable
// accumulator.

import (
	"fmt"

	"calcite/internal/types"
)

// TypedAccumulator is an accumulator accepting pre-unboxed values.
type TypedAccumulator interface {
	Accumulator
	// IsCountStar reports a COUNT(*) state, addable via AddCountStar.
	IsCountStar() bool
	// ArgOrdinal is the input ordinal of the single argument (-1 for
	// COUNT(*)).
	ArgOrdinal() int
	AddCountStar(n int64)
	AddNonNullInt64(v int64)
	AddNonNullFloat64(v float64)
	AddNonNullString(v string) error
}

// AsTyped unwraps acc into its typed fast-path interface: a non-DISTINCT,
// unfiltered state computing COUNT/SUM/AVG/MIN/MAX. Any other accumulator
// (DISTINCT wrapper, FILTER clause, COLLECT/SINGLE_VALUE) returns nil and
// must be fed boxed rows.
func AsTyped(acc Accumulator) TypedAccumulator {
	s, ok := acc.(*aggState)
	if !ok || s.call.FilterArg >= 0 || s.call.Distinct {
		return nil
	}
	switch s.call.Func {
	case AggCount, AggSum, AggMin, AggMax, AggAvg:
		return s
	}
	return nil
}

// IsCountStar reports whether the state counts rows with no argument, so the
// caller may bulk-add with AddCountStar instead of iterating.
func (s *aggState) IsCountStar() bool {
	return s.call.Func == AggCount && len(s.call.Args) == 0
}

// ArgOrdinal returns the input ordinal of the single aggregate argument, or
// -1 for COUNT(*).
func (s *aggState) ArgOrdinal() int {
	if len(s.call.Args) == 0 {
		return -1
	}
	return s.call.Args[0]
}

// AddCountStar adds n rows to a COUNT(*) state.
func (s *aggState) AddCountStar(n int64) { s.count += n }

// AddNonNullInt64 feeds one non-NULL int64 argument value.
func (s *aggState) AddNonNullInt64(v int64) {
	if !s.started {
		s.started = true
		s.minV, s.maxV = v, v
	}
	s.count++
	switch s.call.Func {
	case AggSum, AggAvg:
		s.sumI += v
		s.sumF += float64(v)
	case AggMin:
		if mv, ok := s.minV.(int64); ok {
			if v < mv {
				s.minV = v
			}
		} else if types.Compare(v, s.minV) < 0 {
			s.minV = v
		}
	case AggMax:
		if mv, ok := s.maxV.(int64); ok {
			if v > mv {
				s.maxV = v
			}
		} else if types.Compare(v, s.maxV) > 0 {
			s.maxV = v
		}
	}
}

// AddNonNullFloat64 feeds one non-NULL float64 argument value.
func (s *aggState) AddNonNullFloat64(v float64) {
	if !s.started {
		s.started = true
		s.minV, s.maxV = v, v
	}
	s.count++
	switch s.call.Func {
	case AggSum, AggAvg:
		s.floats++
		s.sumF += v
	case AggMin:
		if mv, ok := s.minV.(float64); ok {
			if v < mv {
				s.minV = v
			}
		} else if types.Compare(v, s.minV) < 0 {
			s.minV = v
		}
	case AggMax:
		if mv, ok := s.maxV.(float64); ok {
			if v > mv {
				s.maxV = v
			}
		} else if types.Compare(v, s.maxV) > 0 {
			s.maxV = v
		}
	}
}

// AddNonNullString feeds one non-NULL string argument value. SUM/AVG error
// exactly as the boxed path does for non-numeric input.
func (s *aggState) AddNonNullString(v string) error {
	if !s.started {
		s.started = true
		s.minV, s.maxV = v, v
	}
	s.count++
	switch s.call.Func {
	case AggSum, AggAvg:
		return fmt.Errorf("rex: %s over non-numeric %T", s.call.Func, v)
	case AggMin:
		if mv, ok := s.minV.(string); ok {
			if v < mv {
				s.minV = v
			}
		} else if types.Compare(v, s.minV) < 0 {
			s.minV = v
		}
	case AggMax:
		if mv, ok := s.maxV.(string); ok {
			if v > mv {
				s.maxV = v
			}
		} else if types.Compare(v, s.maxV) > 0 {
			s.maxV = v
		}
	}
	return nil
}
