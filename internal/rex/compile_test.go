package rex

import (
	"reflect"
	"testing"

	"calcite/internal/types"
)

// compileFixtureRows exercises NULLs, ints, floats, strings and booleans.
func compileFixtureRows() [][]any {
	return [][]any{
		{int64(1), 10.5, "alice", true},
		{int64(2), nil, "bob", false},
		{nil, 3.25, "carol", nil},
		{int64(-7), 0.0, "", true},
		{int64(5), 2.0, "dave", nil},
	}
}

func compileFixtureExprs() []Node {
	ref := func(i int, t *types.Type) Node { return NewInputRef(i, t) }
	i0 := ref(0, types.BigInt)
	f1 := ref(1, types.Double)
	s2 := ref(2, types.Varchar)
	b3 := ref(3, types.Boolean)
	return []Node{
		Int(42),
		i0,
		NewCall(OpEquals, i0, Int(2)),
		NewCall(OpGreater, i0, Int(0)),
		NewCall(OpLessEqual, Int(2), i0),
		NewCall(OpNotEquals, s2, Str("bob")),
		NewCall(OpLess, f1, Float(4.0)),
		NewCall(OpGreaterEqual, f1, f1),
		NewCall(OpPlus, i0, Int(3)),
		NewCall(OpMinus, Float(100), f1),
		NewCall(OpTimes, i0, i0),
		NewCall(OpDivide, f1, Float(2)),
		NewCall(OpIsNull, f1),
		NewCall(OpIsNotNull, i0),
		NewCall(OpNot, b3),
		And(NewCall(OpGreater, i0, Int(0)), NewCall(OpIsNotNull, f1)),
		Or(NewCall(OpEquals, s2, Str("alice")), b3),
		NewCall(OpCase, NewCall(OpGreater, i0, Int(1)), Str("big"), Str("small")),
		NewCall(OpCoalesce, f1, Float(-1)),
		NewCallTyped(OpCast, types.Varchar, i0),
		NewCall(OpUpper, s2),
		NewCall(OpLike, s2, Str("%a%")),
		NewCall(OpConcat, s2, Str("!")),
	}
}

// TestCompileMatchesEvaluator: the compiled closures must agree with the
// tree-walking interpreter on every expression/row pair, in both the
// row-major and column-major forms.
func TestCompileMatchesEvaluator(t *testing.T) {
	rows := compileFixtureRows()
	cols := make([][]any, 4)
	for c := range cols {
		cols[c] = make([]any, len(rows))
		for r, row := range rows {
			cols[c][r] = row[c]
		}
	}
	ev := &Evaluator{}
	for _, e := range compileFixtureExprs() {
		rowFn, err := Compile(e)
		if err != nil {
			t.Fatalf("Compile(%s): %v", e, err)
		}
		colFn, err := CompileCols(e)
		if err != nil {
			t.Fatalf("CompileCols(%s): %v", e, err)
		}
		for r, row := range rows {
			want, werr := ev.Eval(e, row)
			got, gerr := rowFn(row)
			if (werr == nil) != (gerr == nil) || !reflect.DeepEqual(want, got) {
				t.Errorf("%s row %d: interp (%v, %v) vs compiled (%v, %v)", e, r, want, werr, got, gerr)
			}
			cgot, cerr := colFn(cols, r)
			if (werr == nil) != (cerr == nil) || !reflect.DeepEqual(want, cgot) {
				t.Errorf("%s row %d: interp (%v, %v) vs col-compiled (%v, %v)", e, r, want, werr, cgot, cerr)
			}
		}
	}
}

// TestCompileRejectsDynamicState: params and correlation variables must fall
// back to the Evaluator.
func TestCompileRejectsDynamicState(t *testing.T) {
	if _, err := Compile(&DynamicParam{Index: 0, T: types.BigInt}); err == nil {
		t.Error("dynamic param should not compile")
	}
	if _, err := Compile(NewCall(OpEquals,
		NewInputRef(0, types.BigInt),
		&CorrelVariable{Name: "c0", T: types.BigInt})); err == nil {
		t.Error("correlation variable should not compile")
	}
}

// TestFilterKernelMatchesEvaluator: every kernel-recognized predicate must
// select exactly the rows the interpreter keeps.
func TestFilterKernelMatchesEvaluator(t *testing.T) {
	rows := compileFixtureRows()
	cols := make([][]any, 4)
	for c := range cols {
		cols[c] = make([]any, len(rows))
		for r, row := range rows {
			cols[c][r] = row[c]
		}
	}
	sel := make([]int32, len(rows))
	for i := range sel {
		sel[i] = int32(i)
	}
	i0 := NewInputRef(0, types.BigInt)
	f1 := NewInputRef(1, types.Double)
	s2 := NewInputRef(2, types.Varchar)
	preds := []Node{
		NewCall(OpGreater, i0, Int(0)),
		NewCall(OpLess, Int(0), i0),
		NewCall(OpEquals, s2, Str("bob")),
		NewCall(OpGreaterEqual, f1, Float(2.0)),
		NewCall(OpNotEquals, i0, Int(2)),
		NewCall(OpIsNull, f1),
		NewCall(OpIsNotNull, i0),
		NewCall(OpLess, i0, f1),
		NewCall(OpEquals, i0, Null()),
		And(NewCall(OpGreater, i0, Int(-10)), NewCall(OpIsNotNull, f1), NewCall(OpLess, f1, Float(11))),
	}
	ev := &Evaluator{}
	for _, p := range preds {
		kernel, ok := FilterKernel(p)
		if !ok {
			t.Fatalf("no kernel for %s", p)
		}
		got, err := kernel(cols, sel, nil)
		if err != nil {
			t.Fatalf("kernel %s: %v", p, err)
		}
		var want []int32
		for r, row := range rows {
			keep, err := ev.EvalBool(p, row)
			if err != nil {
				t.Fatalf("eval %s: %v", p, err)
			}
			if keep {
				want = append(want, int32(r))
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: kernel %v vs interp %v", p, got, want)
		}
	}
	// Unrecognized shapes must decline, not misfire.
	if _, ok := FilterKernel(NewCall(OpLike, s2, Str("%a%"))); ok {
		t.Error("LIKE should have no kernel")
	}
}

// TestArithKernelMatchesEvaluator checks the projection kernels.
func TestArithKernelMatchesEvaluator(t *testing.T) {
	rows := compileFixtureRows()
	cols := make([][]any, 4)
	for c := range cols {
		cols[c] = make([]any, len(rows))
		for r, row := range rows {
			cols[c][r] = row[c]
		}
	}
	sel := []int32{0, 2, 4}
	i0 := NewInputRef(0, types.BigInt)
	f1 := NewInputRef(1, types.Double)
	exprs := []Node{
		i0,
		Str("k"),
		NewCall(OpPlus, i0, Int(100)),
		NewCall(OpTimes, f1, Float(3)),
		NewCall(OpMinus, i0, i0),
		NewCall(OpDivide, f1, Float(4)),
		NewCall(OpPlus, Int(1), f1),
	}
	ev := &Evaluator{}
	for _, e := range exprs {
		kernel, ok := ArithKernel(e)
		if !ok {
			t.Fatalf("no arith kernel for %s", e)
		}
		out := make([]any, len(sel))
		if err := kernel(cols, sel, out); err != nil {
			t.Fatalf("kernel %s: %v", e, err)
		}
		for k, r := range sel {
			want, err := ev.Eval(e, rows[r])
			if err != nil {
				t.Fatalf("eval %s: %v", e, err)
			}
			if !reflect.DeepEqual(out[k], want) {
				t.Errorf("%s row %d: kernel %v vs interp %v", e, r, out[k], want)
			}
		}
	}
}
