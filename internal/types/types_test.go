package types

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKindPredicates(t *testing.T) {
	if !BigIntKind.IsNumeric() || !BigIntKind.IsExactNumeric() {
		t.Error("BIGINT should be exact numeric")
	}
	if !DoubleKind.IsNumeric() || DoubleKind.IsExactNumeric() {
		t.Error("DOUBLE should be approximate numeric")
	}
	if !VarcharKind.IsCharacter() || VarcharKind.IsNumeric() {
		t.Error("VARCHAR should be character only")
	}
	if !TimestampKind.IsDatetime() {
		t.Error("TIMESTAMP should be datetime")
	}
}

func TestTypeString(t *testing.T) {
	cases := map[string]*Type{
		"BIGINT":             BigInt,
		"VARCHAR(20)":        VarcharN(20),
		"MAP<VARCHAR, ANY?>": Map(Varchar, Any),
		"BIGINT ARRAY":       Array(BigInt),
		"DOUBLE?":            Double.WithNullable(true),
		"ROW(a BIGINT)":      Row(Field{Name: "a", Type: BigInt}),
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestTypeEqual(t *testing.T) {
	if !Row(Field{"a", BigInt}).Equal(Row(Field{"a", BigInt})) {
		t.Error("identical row types should be equal")
	}
	if Row(Field{"a", BigInt}).Equal(Row(Field{"b", BigInt})) {
		t.Error("differently named fields should differ")
	}
	if BigInt.Equal(BigInt.WithNullable(true)) {
		t.Error("nullability should matter")
	}
}

func TestLeastRestrictive(t *testing.T) {
	cases := []struct {
		a, b *Type
		want Kind
	}{
		{Integer, Double, DoubleKind},
		{BigInt, Integer, BigIntKind},
		{Varchar, VarcharN(5), VarcharKind},
		{Null, BigInt, BigIntKind},
		{Date, Timestamp, TimestampKind},
	}
	for _, c := range cases {
		got := LeastRestrictive(c.a, c.b)
		if got == nil || got.Kind != c.want {
			t.Errorf("LeastRestrictive(%s, %s) = %v, want kind %s", c.a, c.b, got, c.want)
		}
	}
	if LeastRestrictive(Boolean, BigInt) != nil {
		t.Error("BOOLEAN and BIGINT should be incompatible")
	}
}

// Property: LeastRestrictive is commutative over scalar kinds.
func TestLeastRestrictiveCommutative(t *testing.T) {
	kinds := []*Type{Boolean, Integer, BigInt, Double, Varchar, Timestamp, Date, Null}
	f := func(i, j uint8) bool {
		a := kinds[int(i)%len(kinds)]
		b := kinds[int(j)%len(kinds)]
		x := LeastRestrictive(a, b)
		y := LeastRestrictive(b, a)
		if x == nil || y == nil {
			return (x == nil) == (y == nil)
		}
		return x.Kind == y.Kind
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LeastRestrictive is idempotent: LR(a, a).Kind == a.Kind.
func TestLeastRestrictiveIdempotent(t *testing.T) {
	for _, a := range []*Type{Boolean, Integer, BigInt, Double, Varchar, Timestamp} {
		got := LeastRestrictive(a, a)
		if got == nil || got.Kind != a.Kind {
			t.Errorf("LR(%s,%s) = %v", a, a, got)
		}
	}
}

// Property: Compare is a total order consistent with equality on int64s.
func TestCompareTotalOrderInts(t *testing.T) {
	f := func(a, b, c int64) bool {
		// antisymmetry
		if Compare(a, b) != -Compare(b, a) {
			return false
		}
		// transitivity spot check
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: HashKey equality matches Compare==0 for mixed numerics.
func TestHashKeyConsistentWithCompare(t *testing.T) {
	f := func(a int32) bool {
		// Restricted to the range where float64 is exact.
		v := int64(a)
		return HashKey(v) == HashKey(float64(v)) && Compare(v, float64(v)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareNulls(t *testing.T) {
	if Compare(nil, int64(1)) != -1 || Compare(int64(1), nil) != 1 || Compare(nil, nil) != 0 {
		t.Error("NULL should sort first")
	}
	if ValuesEqual(nil, nil) {
		t.Error("NULL must not equal NULL")
	}
}

func TestCoerceTo(t *testing.T) {
	cases := []struct {
		in   any
		t    *Type
		want any
	}{
		{"42", BigInt, int64(42)},
		{int64(3), Double, float64(3)},
		{3.9, BigInt, int64(3)},
		{"true", Boolean, true},
		{int64(7), Varchar, "7"},
		{"abcdef", VarcharN(3), "abc"},
		{nil, BigInt, nil},
	}
	for _, c := range cases {
		got, err := CoerceTo(c.in, c.t)
		if err != nil {
			t.Errorf("CoerceTo(%v, %s): %v", c.in, c.t, err)
			continue
		}
		if Compare(got, c.want) != 0 && !(got == nil && c.want == nil) {
			t.Errorf("CoerceTo(%v, %s) = %v, want %v", c.in, c.t, got, c.want)
		}
	}
	if _, err := CoerceTo("notanumber", BigInt); err == nil {
		t.Error("expected cast error")
	}
}

func TestTimestampRoundTrip(t *testing.T) {
	ms, err := ParseTimestampMillis("2018-06-10 12:30:00")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatTimestampMillis(ms); got != "2018-06-10 12:30:00.000" {
		t.Errorf("round trip = %q", got)
	}
}

func TestConcatFieldsRenamesDuplicates(t *testing.T) {
	out := ConcatFields(
		[]Field{{"id", BigInt}, {"name", Varchar}},
		[]Field{{"id", BigInt}, {"x", Double}},
	)
	if out[2].Name == "id" {
		t.Errorf("duplicate not renamed: %v", out)
	}
	if out[0].Name != "id" || out[3].Name != "x" {
		t.Errorf("unexpected names: %v", out)
	}
}

func TestStatisticsLikeFieldIndex(t *testing.T) {
	rt := Row(Field{"Alpha", BigInt}, Field{"beta", Varchar})
	if rt.FieldIndex("ALPHA") != 0 || rt.FieldIndex("Beta") != 1 || rt.FieldIndex("x") != -1 {
		t.Error("FieldIndex should be case-insensitive")
	}
}

func TestAsFloatTemporal(t *testing.T) {
	// Adapters may hand back time.Time where the engine's native
	// representation is epoch-millisecond int64; both must order identically
	// (RANGE window frames over a rowtime column rely on it).
	at := time.Date(2018, 6, 10, 12, 0, 0, 0, time.UTC)
	f, ok := AsFloat(at)
	if !ok || f != float64(at.UnixMilli()) {
		t.Errorf("AsFloat(time.Time) = %v, %v", f, ok)
	}
	g, ok := AsFloat(at.UnixMilli())
	if !ok || g != f {
		t.Errorf("epoch millis and time.Time diverge: %v vs %v", g, f)
	}
	if _, ok := AsFloat("2018-06-10"); ok {
		t.Error("strings must not coerce to float")
	}
	// Compare must be antisymmetric across the two representations, or
	// sorting a mixed column becomes comparator-order dependent.
	ms := at.UnixMilli()
	if Compare(ms-1, at) != -1 || Compare(at, ms-1) != 1 {
		t.Errorf("mixed compare asymmetric: %d vs %d", Compare(ms-1, at), Compare(at, ms-1))
	}
	if Compare(at, ms) != 0 || Compare(ms, at) != 0 {
		t.Error("equal instants should compare equal both ways")
	}
}
