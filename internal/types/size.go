package types

import "time"

// Memory-footprint estimation for runtime values. The memory governor
// (internal/memory) charges operators for the data they retain; these
// estimates only need to be proportional to real usage, not exact, so they
// use flat per-kind costs: every value pays for its interface header plus
// the payload it points at.

const (
	// ifaceSize is the cost of holding one value in an []any slot: the
	// two-word interface header plus, for non-pointer-packed kinds, the
	// pointed-at allocation's bookkeeping.
	ifaceSize = 16
	// sliceHeaderSize covers a slice header plus allocator overhead.
	sliceHeaderSize = 24
)

// SizeOfValue estimates the retained bytes of one runtime value.
func SizeOfValue(v any) int64 {
	switch x := v.(type) {
	case nil, bool:
		return ifaceSize
	case int64, int, float64:
		return ifaceSize + 8
	case string:
		return ifaceSize + sliceHeaderSize + int64(len(x))
	case time.Time:
		return ifaceSize + 24
	case []any:
		n := int64(ifaceSize + sliceHeaderSize)
		for _, e := range x {
			n += SizeOfValue(e)
		}
		return n
	case map[string]any:
		n := int64(ifaceSize + 48)
		for k, e := range x {
			n += sliceHeaderSize + int64(len(k)) + SizeOfValue(e)
		}
		return n
	default:
		// Opaque payloads (geometry, accumulators travelling as values):
		// charge a round constant so they are not free.
		return ifaceSize + 64
	}
}

// SizeOfRow estimates the retained bytes of one materialized row.
func SizeOfRow(row []any) int64 {
	n := int64(sliceHeaderSize)
	for _, v := range row {
		n += SizeOfValue(v)
	}
	return n
}
