package types

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Runtime value representation
//
// Rows flowing through the engine are []any. Scalar values use a small,
// closed set of Go types:
//
//	BOOLEAN            bool
//	TINYINT..BIGINT    int64
//	FLOAT, DOUBLE      float64
//	DECIMAL            float64 (see DESIGN.md substitution notes)
//	VARCHAR, CHAR      string
//	TIMESTAMP/DATE/... int64 (epoch millis / days / millis-of-day / millis)
//	ARRAY, MULTISET    []any
//	MAP                map[string]any
//	ROW                []any
//	GEOMETRY           geo.Geometry (opaque here; implements fmt.Stringer)
//	NULL               nil

// AsFloat coerces a numeric or temporal runtime value to float64. Temporal
// values (adapters may hand back time.Time instead of the engine's epoch-
// millisecond int64) map to epoch milliseconds, so value-based ordering —
// RANGE window frames over a rowtime column, histogram bucketing — treats
// both representations identically.
func AsFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case int:
		return float64(x), true
	case float64:
		return x, true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	case time.Time:
		return float64(x.UnixMilli()), true
	}
	return 0, false
}

// AsInt coerces a numeric runtime value to int64.
func AsInt(v any) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case int:
		return int64(x), true
	case float64:
		return int64(x), true
	}
	return 0, false
}

// Compare orders two runtime values. NULL sorts before everything (SQL's
// NULLS FIRST default for ascending order in this engine). Values of
// mismatched numeric Go types are compared numerically. The result is
// -1, 0 or +1. Comparison of incomparable dynamic types falls back to the
// string forms so that sorting is always total (needed by sort stability and
// digest determinism), but operators should have coerced operands already.
func Compare(a, b any) int {
	if a == nil && b == nil {
		return 0
	}
	if a == nil {
		return -1
	}
	if b == nil {
		return 1
	}
	switch x := a.(type) {
	case int64:
		if y, ok := AsInt(b); ok {
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			}
			return 0
		}
		if y, ok := AsFloat(b); ok {
			return compareFloat(float64(x), y)
		}
	case float64:
		if y, ok := AsFloat(b); ok {
			return compareFloat(x, y)
		}
	case string:
		if y, ok := b.(string); ok {
			return strings.Compare(x, y)
		}
	case bool:
		if y, ok := b.(bool); ok {
			switch {
			case !x && y:
				return -1
			case x && !y:
				return 1
			}
			return 0
		}
	case time.Time:
		if y, ok := b.(time.Time); ok {
			switch {
			case x.Before(y):
				return -1
			case x.After(y):
				return 1
			}
			return 0
		}
		// Mixed representations (adapters hand back time.Time, the engine's
		// native form is epoch-millis int64) compare numerically — and must
		// do so from BOTH sides, or the comparator turns asymmetric and
		// sorting/partitioning over such a column becomes arbitrary.
		if y, ok := AsFloat(b); ok {
			return compareFloat(float64(x.UnixMilli()), y)
		}
	case []any:
		if y, ok := b.([]any); ok {
			for i := 0; i < len(x) && i < len(y); i++ {
				if c := Compare(x[i], y[i]); c != 0 {
					return c
				}
			}
			return len(x) - len(y)
		}
	}
	return strings.Compare(FormatValue(a), FormatValue(b))
}

func compareFloat(x, y float64) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	case math.IsNaN(x) && !math.IsNaN(y):
		return -1
	case !math.IsNaN(x) && math.IsNaN(y):
		return 1
	}
	return 0
}

// ValuesEqual reports SQL equality of two runtime values (NULL equals
// nothing; use Compare for ordering, which treats NULLs as comparable).
func ValuesEqual(a, b any) bool {
	if a == nil || b == nil {
		return false
	}
	return Compare(a, b) == 0
}

// HashKey produces a deterministic string key for grouping/joining on a
// runtime value. Numeric values hash to the same key regardless of int/float
// representation when integral.
func HashKey(v any) string {
	switch x := v.(type) {
	case nil:
		return "\x00N"
	case bool:
		if x {
			return "\x00T"
		}
		return "\x00F"
	case int64:
		return "\x00i" + strconv.FormatInt(x, 10)
	case int:
		return "\x00i" + strconv.FormatInt(int64(x), 10)
	case float64:
		if x == math.Trunc(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e15 {
			return "\x00i" + strconv.FormatInt(int64(x), 10)
		}
		return "\x00f" + strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return "\x00s" + x
	case []any:
		parts := make([]string, len(x))
		for i, e := range x {
			parts[i] = HashKey(e)
		}
		return "\x00a[" + strings.Join(parts, ",") + "]"
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + "=" + HashKey(x[k])
		}
		return "\x00m{" + strings.Join(parts, ",") + "}"
	default:
		return "\x00?" + FormatValue(v)
	}
}

// HashRowKey produces a grouping key over selected columns of a row.
func HashRowKey(row []any, cols []int) string {
	var b strings.Builder
	for _, c := range cols {
		b.WriteString(HashKey(row[c]))
		b.WriteByte('|')
	}
	return b.String()
}

// HashColsKey is HashRowKey over column-major data: the key of row r built
// from the given columns, byte-for-byte identical to HashRowKey over the
// materialized row. Join probes, exchanges and aggregates over batches all
// share this one encoding.
func HashColsKey(colData [][]any, r int, cols []int) string {
	var b strings.Builder
	for _, c := range cols {
		b.WriteString(HashKey(colData[c][r]))
		b.WriteByte('|')
	}
	return b.String()
}

// FormatValue renders a runtime value for display (EXPLAIN output, the SQL
// shell, and literal digests).
func FormatValue(v any) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case string:
		return x
	case bool:
		if x {
			return "true"
		}
		return "false"
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case int64:
		return strconv.FormatInt(x, 10)
	case []any:
		parts := make([]string, len(x))
		for i, e := range x {
			parts[i] = FormatValue(e)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s: %s", k, FormatValue(x[k]))
		}
		return "{" + strings.Join(parts, ", ") + "}"
	default:
		return fmt.Sprintf("%v", v)
	}
}

// FormatTimestampMillis renders an epoch-milliseconds timestamp.
func FormatTimestampMillis(ms int64) string {
	return time.UnixMilli(ms).UTC().Format("2006-01-02 15:04:05.000")
}

// ParseTimestampMillis parses "YYYY-MM-DD HH:MM:SS[.mmm]" (or a date) into
// epoch milliseconds.
func ParseTimestampMillis(s string) (int64, error) {
	for _, layout := range []string{
		"2006-01-02 15:04:05.000",
		"2006-01-02 15:04:05",
		"2006-01-02T15:04:05Z",
		"2006-01-02",
	} {
		if t, err := time.Parse(layout, s); err == nil {
			return t.UnixMilli(), nil
		}
	}
	return 0, fmt.Errorf("types: cannot parse timestamp %q", s)
}

// CoerceTo converts a runtime value to type t, implementing CAST semantics.
// A nil input stays nil. Returns an error for impossible conversions.
func CoerceTo(v any, t *Type) (any, error) {
	if v == nil {
		return nil, nil
	}
	switch t.Kind {
	case BooleanKind:
		switch x := v.(type) {
		case bool:
			return x, nil
		case string:
			b, err := strconv.ParseBool(strings.ToLower(strings.TrimSpace(x)))
			if err != nil {
				return nil, fmt.Errorf("types: cannot cast %q to BOOLEAN", x)
			}
			return b, nil
		}
	case TinyIntKind, IntegerKind, BigIntKind:
		if i, ok := AsInt(v); ok {
			return i, nil
		}
		if s, ok := v.(string); ok {
			i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				f, ferr := strconv.ParseFloat(strings.TrimSpace(s), 64)
				if ferr != nil {
					return nil, fmt.Errorf("types: cannot cast %q to %s", s, t.Kind)
				}
				return int64(f), nil
			}
			return i, nil
		}
	case FloatKind, DoubleKind, DecimalKind:
		if f, ok := AsFloat(v); ok {
			return f, nil
		}
		if s, ok := v.(string); ok {
			f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return nil, fmt.Errorf("types: cannot cast %q to %s", s, t.Kind)
			}
			return f, nil
		}
	case VarcharKind, CharKind:
		s := FormatValue(v)
		if t.Precision > 0 && len(s) > t.Precision {
			s = s[:t.Precision]
		}
		return s, nil
	case TimestampKind, DateKind, TimeKind, IntervalKind:
		if i, ok := AsInt(v); ok {
			return i, nil
		}
		if s, ok := v.(string); ok {
			return ParseTimestampMillis(s)
		}
	case ArrayKind, MultisetKind:
		if a, ok := v.([]any); ok {
			return a, nil
		}
	case MapKind:
		if m, ok := v.(map[string]any); ok {
			return m, nil
		}
	case AnyKind, UnknownKind, RowKind, GeometryKind:
		return v, nil
	}
	return nil, fmt.Errorf("types: cannot cast %T value to %s", v, t)
}
