// Package types implements the SQL type system at the core of the relational
// algebra: scalar types, the semi-structured complex types of §7.1 of the
// paper (ARRAY, MAP, MULTISET), row types, and the GEOMETRY type of §7.3.
//
// Types are immutable once constructed. Row values at runtime are represented
// as []any (see package rex for evaluation); the functions in this package
// define comparison, hashing and coercion semantics over those runtime
// values so that every operator in the engine agrees on them.
package types

import (
	"fmt"
	"strings"
)

// Kind enumerates the built-in type constructors.
type Kind int

const (
	UnknownKind Kind = iota
	BooleanKind
	TinyIntKind
	IntegerKind
	BigIntKind
	FloatKind
	DoubleKind
	DecimalKind
	VarcharKind
	CharKind
	TimestampKind // milliseconds since epoch, stored as int64
	DateKind      // days since epoch, stored as int64
	TimeKind      // milliseconds since midnight, stored as int64
	IntervalKind  // milliseconds, stored as int64
	ArrayKind
	MapKind
	MultisetKind
	RowKind
	GeometryKind
	AnyKind
	NullKind // the type of the NULL literal before inference
)

var kindNames = map[Kind]string{
	UnknownKind:   "UNKNOWN",
	BooleanKind:   "BOOLEAN",
	TinyIntKind:   "TINYINT",
	IntegerKind:   "INTEGER",
	BigIntKind:    "BIGINT",
	FloatKind:     "FLOAT",
	DoubleKind:    "DOUBLE",
	DecimalKind:   "DECIMAL",
	VarcharKind:   "VARCHAR",
	CharKind:      "CHAR",
	TimestampKind: "TIMESTAMP",
	DateKind:      "DATE",
	TimeKind:      "TIME",
	IntervalKind:  "INTERVAL",
	ArrayKind:     "ARRAY",
	MapKind:       "MAP",
	MultisetKind:  "MULTISET",
	RowKind:       "ROW",
	GeometryKind:  "GEOMETRY",
	AnyKind:       "ANY",
	NullKind:      "NULL",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsNumeric reports whether values of this kind support arithmetic.
func (k Kind) IsNumeric() bool {
	switch k {
	case TinyIntKind, IntegerKind, BigIntKind, FloatKind, DoubleKind, DecimalKind:
		return true
	}
	return false
}

// IsExactNumeric reports whether the kind is integer-valued.
func (k Kind) IsExactNumeric() bool {
	switch k {
	case TinyIntKind, IntegerKind, BigIntKind:
		return true
	}
	return false
}

// IsCharacter reports whether the kind is a character string kind.
func (k Kind) IsCharacter() bool { return k == VarcharKind || k == CharKind }

// IsDatetime reports whether the kind is a date/time kind.
func (k Kind) IsDatetime() bool {
	return k == TimestampKind || k == DateKind || k == TimeKind
}

// Field is a named component of a row type.
type Field struct {
	Name string
	Type *Type
}

// Type describes a SQL type. The zero value is not meaningful; use the
// constructors below.
type Type struct {
	Kind      Kind
	Nullable  bool
	Precision int     // VARCHAR length, DECIMAL precision; 0 = unspecified
	Scale     int     // DECIMAL scale
	Elem      *Type   // element type for ARRAY and MULTISET, value type for MAP
	Key       *Type   // key type for MAP
	Fields    []Field // components for ROW
}

// Convenient shared scalar types. They are treated as immutable.
var (
	Unknown         = &Type{Kind: UnknownKind}
	Boolean         = &Type{Kind: BooleanKind}
	NullableBoolean = &Type{Kind: BooleanKind, Nullable: true}
	Integer         = &Type{Kind: IntegerKind}
	BigInt          = &Type{Kind: BigIntKind}
	Double          = &Type{Kind: DoubleKind}
	Varchar         = &Type{Kind: VarcharKind}
	Timestamp       = &Type{Kind: TimestampKind}
	Date            = &Type{Kind: DateKind}
	Interval        = &Type{Kind: IntervalKind}
	Geometry        = &Type{Kind: GeometryKind}
	Any             = &Type{Kind: AnyKind, Nullable: true}
	Null            = &Type{Kind: NullKind, Nullable: true}
)

// Scalar returns the shared scalar type for kind k (non-nullable).
func Scalar(k Kind) *Type {
	switch k {
	case BooleanKind:
		return Boolean
	case IntegerKind:
		return Integer
	case BigIntKind:
		return BigInt
	case DoubleKind:
		return Double
	case VarcharKind:
		return Varchar
	case TimestampKind:
		return Timestamp
	case DateKind:
		return Date
	case IntervalKind:
		return Interval
	case GeometryKind:
		return Geometry
	case AnyKind:
		return Any
	case NullKind:
		return Null
	}
	return &Type{Kind: k}
}

// Array returns an ARRAY type with the given element type.
func Array(elem *Type) *Type { return &Type{Kind: ArrayKind, Elem: elem} }

// Multiset returns a MULTISET type with the given element type.
func Multiset(elem *Type) *Type { return &Type{Kind: MultisetKind, Elem: elem} }

// Map returns a MAP type with the given key and value types.
func Map(key, value *Type) *Type { return &Type{Kind: MapKind, Key: key, Elem: value} }

// Row returns a ROW type with the given fields.
func Row(fields ...Field) *Type { return &Type{Kind: RowKind, Fields: fields} }

// VarcharN returns a VARCHAR(n) type.
func VarcharN(n int) *Type { return &Type{Kind: VarcharKind, Precision: n} }

// WithNullable returns a copy of t with the given nullability (or t itself
// if the nullability already matches).
func (t *Type) WithNullable(nullable bool) *Type {
	if t == nil || t.Nullable == nullable {
		return t
	}
	c := *t
	c.Nullable = nullable
	return &c
}

// String renders the type in SQL-ish syntax, e.g. "VARCHAR(20)" or
// "MAP<VARCHAR, ANY>".
func (t *Type) String() string {
	if t == nil {
		return "NIL"
	}
	var b strings.Builder
	switch t.Kind {
	case ArrayKind:
		fmt.Fprintf(&b, "%s ARRAY", t.Elem)
	case MultisetKind:
		fmt.Fprintf(&b, "%s MULTISET", t.Elem)
	case MapKind:
		fmt.Fprintf(&b, "MAP<%s, %s>", t.Key, t.Elem)
	case RowKind:
		b.WriteString("ROW(")
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", f.Name, f.Type)
		}
		b.WriteString(")")
	default:
		b.WriteString(t.Kind.String())
		if t.Precision > 0 {
			if t.Scale > 0 {
				fmt.Fprintf(&b, "(%d, %d)", t.Precision, t.Scale)
			} else {
				fmt.Fprintf(&b, "(%d)", t.Precision)
			}
		}
	}
	if t.Nullable {
		b.WriteString("?")
	}
	return b.String()
}

// Equal reports whether two types are structurally identical, including
// nullability.
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil {
		return false
	}
	if t.Kind != o.Kind || t.Nullable != o.Nullable ||
		t.Precision != o.Precision || t.Scale != o.Scale {
		return false
	}
	if !typeEqualPtr(t.Elem, o.Elem) || !typeEqualPtr(t.Key, o.Key) {
		return false
	}
	if len(t.Fields) != len(o.Fields) {
		return false
	}
	for i := range t.Fields {
		if t.Fields[i].Name != o.Fields[i].Name || !t.Fields[i].Type.Equal(o.Fields[i].Type) {
			return false
		}
	}
	return true
}

func typeEqualPtr(a, b *Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Equal(b)
}

// SameKindIgnoringNullability reports whether the two types describe the same
// structure, disregarding nullability at every level.
func (t *Type) SameKindIgnoringNullability(o *Type) bool {
	return t.WithNullable(false).Equal(o.WithNullable(false)) ||
		(t.Kind == o.Kind && t.Kind != RowKind && t.Kind != ArrayKind && t.Kind != MapKind && t.Kind != MultisetKind)
}

// FieldIndex returns the index of the named field of a ROW type, or -1.
// Matching is case-insensitive, per SQL identifier semantics.
func (t *Type) FieldIndex(name string) int {
	for i, f := range t.Fields {
		if strings.EqualFold(f.Name, name) {
			return i
		}
	}
	return -1
}

// FieldNames returns the names of a ROW type's fields.
func (t *Type) FieldNames() []string {
	names := make([]string, len(t.Fields))
	for i, f := range t.Fields {
		names[i] = f.Name
	}
	return names
}

// numericRank orders numeric kinds for implicit widening.
func numericRank(k Kind) int {
	switch k {
	case TinyIntKind:
		return 1
	case IntegerKind:
		return 2
	case BigIntKind:
		return 3
	case DecimalKind:
		return 4
	case FloatKind:
		return 5
	case DoubleKind:
		return 6
	}
	return 0
}

// LeastRestrictive computes the least restrictive common type of a and b, the
// type to which both can be implicitly coerced (e.g. INTEGER + DOUBLE ->
// DOUBLE). Returns nil when the types are incompatible.
func LeastRestrictive(a, b *Type) *Type {
	if a == nil || b == nil {
		return nil
	}
	nullable := a.Nullable || b.Nullable
	switch {
	case a.Kind == NullKind:
		return b.WithNullable(true)
	case b.Kind == NullKind:
		return a.WithNullable(true)
	case a.Kind == AnyKind || b.Kind == AnyKind:
		return Any
	case a.Kind == b.Kind:
		out := *a
		if b.Precision > out.Precision {
			out.Precision = b.Precision
		}
		if a.Kind == RowKind {
			if len(a.Fields) != len(b.Fields) {
				return nil
			}
			fields := make([]Field, len(a.Fields))
			for i := range a.Fields {
				ft := LeastRestrictive(a.Fields[i].Type, b.Fields[i].Type)
				if ft == nil {
					return nil
				}
				fields[i] = Field{Name: a.Fields[i].Name, Type: ft}
			}
			out.Fields = fields
		}
		out.Nullable = nullable
		return &out
	case a.Kind.IsNumeric() && b.Kind.IsNumeric():
		ra, rb := numericRank(a.Kind), numericRank(b.Kind)
		wide := a.Kind
		if rb > ra {
			wide = b.Kind
		}
		return Scalar(wide).WithNullable(nullable)
	case a.Kind.IsCharacter() && b.Kind.IsCharacter():
		return Varchar.WithNullable(nullable)
	case a.Kind.IsDatetime() && b.Kind.IsDatetime():
		return Timestamp.WithNullable(nullable)
	}
	return nil
}

// ConcatFields returns a new slice of fields combining left and right,
// renaming duplicates with a numeric suffix (mirroring join output naming).
func ConcatFields(left, right []Field) []Field {
	out := make([]Field, 0, len(left)+len(right))
	seen := map[string]int{}
	add := func(f Field) {
		name := f.Name
		lower := strings.ToLower(name)
		if n, ok := seen[lower]; ok {
			n++
			seen[lower] = n
			name = fmt.Sprintf("%s%d", f.Name, n-1)
		} else {
			seen[lower] = 1
		}
		out = append(out, Field{Name: name, Type: f.Type})
	}
	for _, f := range left {
		add(f)
	}
	for _, f := range right {
		add(f)
	}
	return out
}
