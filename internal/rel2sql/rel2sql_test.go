package rel2sql_test

import (
	"strings"
	"testing"

	"calcite/internal/core"
	"calcite/internal/rel2sql"
	"calcite/internal/schema"
	"calcite/internal/types"
)

func fixture() *core.Framework {
	f := core.New()
	f.Catalog.AddTable(schema.NewMemTable("emps", types.Row(
		types.Field{Name: "empid", Type: types.BigInt},
		types.Field{Name: "name", Type: types.Varchar},
		types.Field{Name: "deptno", Type: types.BigInt},
		types.Field{Name: "sal", Type: types.Double},
	), [][]any{
		{int64(1), "a", int64(10), 100.0},
		{int64(2), "b", int64(20), 200.0},
		{int64(3), "c", int64(10), 300.0},
	}))
	f.Catalog.AddTable(schema.NewMemTable("depts", types.Row(
		types.Field{Name: "deptno", Type: types.BigInt},
		types.Field{Name: "dname", Type: types.Varchar},
	), [][]any{{int64(10), "S"}, {int64(20), "M"}}))
	return f
}

// TestRoundTrip: unparse(convert(sql)) re-parses and produces the same rows
// — the §3 "translate the relational expression back to SQL" feature.
func TestRoundTrip(t *testing.T) {
	f := fixture()
	queries := []string{
		"SELECT name FROM emps WHERE sal > 150",
		"SELECT deptno, COUNT(*) AS c, SUM(sal) AS s FROM emps GROUP BY deptno",
		"SELECT e.name, d.dname FROM emps e JOIN depts d ON e.deptno = d.deptno",
		"SELECT name FROM emps ORDER BY sal DESC LIMIT 2",
		"SELECT name FROM emps WHERE deptno = 10 UNION SELECT dname FROM depts",
		"SELECT CASE WHEN sal > 150 THEN 'hi' ELSE 'lo' END AS band FROM emps",
		"SELECT name FROM emps WHERE sal > 100 AND (deptno = 10 OR deptno = 20)",
		"SELECT UPPER(name) AS u FROM emps WHERE name LIKE 'a%'",
	}
	for _, dialect := range []rel2sql.Dialect{rel2sql.ANSI, rel2sql.MySQL, rel2sql.Postgres} {
		for _, q := range queries {
			logical, err := f.ParseAndConvert(q)
			if err != nil {
				t.Fatalf("convert %q: %v", q, err)
			}
			sql, err := rel2sql.Unparse(logical, dialect)
			if err != nil {
				t.Fatalf("unparse %q (%s): %v", q, dialect.Name, err)
			}
			orig, err := f.Execute(q)
			if err != nil {
				t.Fatalf("execute original %q: %v", q, err)
			}
			rt, err := f.Execute(sql)
			if err != nil {
				t.Fatalf("execute round-trip of %q (%s):\n  %s\n  %v", q, dialect.Name, sql, err)
			}
			if len(orig.Rows) != len(rt.Rows) {
				t.Errorf("row count mismatch for %q (%s): %d vs %d\nunparsed: %s",
					q, dialect.Name, len(orig.Rows), len(rt.Rows), sql)
				continue
			}
			// Compare as multisets of formatted rows.
			if !sameRowMultiset(orig.Rows, rt.Rows) {
				t.Errorf("rows differ for %q (%s)\nunparsed: %s\n%v vs %v",
					q, dialect.Name, sql, orig.Rows, rt.Rows)
			}
		}
	}
}

func sameRowMultiset(a, b [][]any) bool {
	count := map[string]int{}
	key := func(row []any) string {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = types.FormatValue(v)
		}
		return strings.Join(parts, "\x00")
	}
	for _, r := range a {
		count[key(r)]++
	}
	for _, r := range b {
		count[key(r)]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestDialectQuoting(t *testing.T) {
	f := fixture()
	logical, err := f.ParseAndConvert("SELECT name FROM emps WHERE sal > 1")
	if err != nil {
		t.Fatal(err)
	}
	my, _ := rel2sql.Unparse(logical, rel2sql.MySQL)
	if !strings.Contains(my, "`name`") {
		t.Errorf("mysql quoting: %s", my)
	}
	pg, _ := rel2sql.Unparse(logical, rel2sql.Postgres)
	if !strings.Contains(pg, `"name"`) {
		t.Errorf("postgres quoting: %s", pg)
	}
}

func TestLimitStyles(t *testing.T) {
	f := fixture()
	logical, err := f.ParseAndConvert("SELECT name FROM emps ORDER BY name LIMIT 2 OFFSET 1")
	if err != nil {
		t.Fatal(err)
	}
	my, _ := rel2sql.Unparse(logical, rel2sql.MySQL)
	if !strings.Contains(my, "LIMIT 2") || !strings.Contains(my, "OFFSET 1") {
		t.Errorf("mysql limit: %s", my)
	}
	ansi, _ := rel2sql.Unparse(logical, rel2sql.ANSI)
	if !strings.Contains(ansi, "FETCH NEXT 2 ROWS ONLY") || !strings.Contains(ansi, "OFFSET 1 ROWS") {
		t.Errorf("ansi fetch: %s", ansi)
	}
}
