// Package rel2sql converts relational expressions back to SQL text (§3 of
// the paper: "once the query has been optimized, Calcite can translate the
// relational expression back to SQL", letting Calcite sit on top of any
// engine with a SQL interface but no optimizer). It supports multiple SQL
// dialects, mirroring the JDBC adapter of Table 2 ("SQL (multiple
// dialects)").
package rel2sql

import (
	"fmt"
	"strings"

	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// Dialect controls identifier quoting and clause syntax.
type Dialect struct {
	// Name identifies the dialect ("ansi", "mysql", "postgresql").
	Name string
	// QuoteStart/QuoteEnd wrap identifiers.
	QuoteStart, QuoteEnd string
	// LimitStyle selects "LIMIT n OFFSET m" vs "OFFSET m ROWS FETCH NEXT n
	// ROWS ONLY".
	LimitStyle string // "limit" or "fetch"
}

// Built-in dialects.
var (
	ANSI     = Dialect{Name: "ansi", QuoteStart: `"`, QuoteEnd: `"`, LimitStyle: "fetch"}
	MySQL    = Dialect{Name: "mysql", QuoteStart: "`", QuoteEnd: "`", LimitStyle: "limit"}
	Postgres = Dialect{Name: "postgresql", QuoteStart: `"`, QuoteEnd: `"`, LimitStyle: "limit"}
)

// Quote quotes an identifier.
func (d Dialect) Quote(name string) string {
	return d.QuoteStart + name + d.QuoteEnd
}

// Unparse renders the plan rooted at n as a SQL statement in the dialect.
func Unparse(n rel.Node, d Dialect) (string, error) {
	u := &unparser{dialect: d}
	q, err := u.toQuery(n)
	if err != nil {
		return "", err
	}
	return q.sql(d), nil
}

// query is a SQL query under construction: either a raw table reference or
// a full SELECT shape. Clauses are filled in until a conflicting clause
// forces nesting into a subquery.
type query struct {
	// table is a plain FROM item (table name or subquery text with alias).
	from      string
	fields    []string // output column names (aliases usable by parents)
	selectSQL []string // select list (empty = SELECT *)
	where     []string
	groupBy   []string
	having    []string
	orderBy   []string
	limit     string
	offset    string
	isSetOp   bool
	setSQL    string
}

func (q *query) sql(d Dialect) string {
	if q.isSetOp && q.selectSQL == nil && q.where == nil && q.groupBy == nil &&
		q.orderBy == nil && q.limit == "" && q.offset == "" {
		return q.setSQL
	}
	var b strings.Builder
	b.WriteString("SELECT ")
	if len(q.selectSQL) == 0 {
		b.WriteString("*")
	} else {
		b.WriteString(strings.Join(q.selectSQL, ", "))
	}
	b.WriteString(" FROM ")
	b.WriteString(q.from)
	if len(q.where) > 0 {
		b.WriteString(" WHERE " + strings.Join(q.where, " AND "))
	}
	if len(q.groupBy) > 0 {
		b.WriteString(" GROUP BY " + strings.Join(q.groupBy, ", "))
	}
	if len(q.having) > 0 {
		b.WriteString(" HAVING " + strings.Join(q.having, " AND "))
	}
	if len(q.orderBy) > 0 {
		b.WriteString(" ORDER BY " + strings.Join(q.orderBy, ", "))
	}
	switch d.LimitStyle {
	case "limit":
		if q.limit != "" {
			b.WriteString(" LIMIT " + q.limit)
		}
		if q.offset != "" {
			b.WriteString(" OFFSET " + q.offset)
		}
	default:
		if q.offset != "" {
			b.WriteString(" OFFSET " + q.offset + " ROWS")
		}
		if q.limit != "" {
			b.WriteString(" FETCH NEXT " + q.limit + " ROWS ONLY")
		}
	}
	return b.String()
}

type unparser struct {
	dialect Dialect
	aliasN  int
}

func (u *unparser) newAlias() string {
	u.aliasN++
	return fmt.Sprintf("t%d", u.aliasN-1)
}

// asSubquery wraps q as a FROM item and resets clause state.
func (u *unparser) asSubquery(q *query, d Dialect) *query {
	alias := u.newAlias()
	return &query{
		from:   "(" + q.sql(d) + ") AS " + d.Quote(alias),
		fields: q.fields,
	}
}

func fieldNames(n rel.Node) []string { return n.RowType().FieldNames() }

func (u *unparser) toQuery(n rel.Node) (*query, error) {
	d := u.dialect
	switch x := n.(type) {
	case *rel.TableScan:
		parts := make([]string, len(x.QualifiedName))
		for i, p := range x.QualifiedName {
			parts[i] = d.Quote(p)
		}
		return &query{from: strings.Join(parts, "."), fields: fieldNames(x)}, nil
	case *rel.Filter:
		q, err := u.toQuery(x.Inputs()[0])
		if err != nil {
			return nil, err
		}
		if len(q.groupBy) > 0 {
			// Filter above aggregate = HAVING.
			cond, err := u.expr(x.Condition, q.fields)
			if err != nil {
				return nil, err
			}
			q.having = append(q.having, cond)
			return q, nil
		}
		if len(q.selectSQL) > 0 || q.limit != "" || q.offset != "" || len(q.orderBy) > 0 {
			q = u.asSubquery(q, d)
		}
		cond, err := u.expr(x.Condition, q.fields)
		if err != nil {
			return nil, err
		}
		q.where = append(q.where, cond)
		return q, nil
	case *rel.Project:
		q, err := u.toQuery(x.Inputs()[0])
		if err != nil {
			return nil, err
		}
		if len(q.selectSQL) > 0 || len(q.groupBy) > 0 || q.limit != "" || q.offset != "" {
			q = u.asSubquery(q, d)
		}
		names := x.FieldNames()
		sel := make([]string, len(x.Exprs))
		for i, e := range x.Exprs {
			es, err := u.expr(e, q.fields)
			if err != nil {
				return nil, err
			}
			sel[i] = es + " AS " + d.Quote(names[i])
		}
		q.selectSQL = sel
		q.fields = names
		return q, nil
	case *rel.Join:
		lq, err := u.toQuery(x.Left())
		if err != nil {
			return nil, err
		}
		rq, err := u.toQuery(x.Right())
		if err != nil {
			return nil, err
		}
		// Always nest join inputs with aliases; qualify columns.
		la, ra := u.newAlias(), u.newAlias()
		lFrom := "(" + lq.sql(d) + ") AS " + d.Quote(la)
		if isPlainTable(lq) {
			lFrom = lq.from + " AS " + d.Quote(la)
		}
		rFrom := "(" + rq.sql(d) + ") AS " + d.Quote(ra)
		if isPlainTable(rq) {
			rFrom = rq.from + " AS " + d.Quote(ra)
		}
		combined := make([]string, 0, len(lq.fields)+len(rq.fields))
		qualified := make([]string, 0, len(combined))
		for _, f := range lq.fields {
			combined = append(combined, f)
			qualified = append(qualified, d.Quote(la)+"."+d.Quote(f))
		}
		for _, f := range rq.fields {
			combined = append(combined, f)
			qualified = append(qualified, d.Quote(ra)+"."+d.Quote(f))
		}
		cond, err := u.exprQualified(x.Condition, qualified)
		if err != nil {
			return nil, err
		}
		var joinKw string
		switch x.Kind {
		case rel.InnerJoin:
			joinKw = "INNER JOIN"
		case rel.LeftJoin:
			joinKw = "LEFT JOIN"
		case rel.RightJoin:
			joinKw = "RIGHT JOIN"
		case rel.FullJoin:
			joinKw = "FULL JOIN"
		default:
			return nil, fmt.Errorf("rel2sql: cannot unparse %s join", x.Kind)
		}
		// Build a select list that disambiguates duplicate names.
		outNames := fieldNames(x)
		sel := make([]string, len(outNames))
		for i := range outNames {
			sel[i] = qualified[i] + " AS " + d.Quote(outNames[i])
		}
		return &query{
			from:      lFrom + " " + joinKw + " " + rFrom + " ON " + cond,
			fields:    outNames,
			selectSQL: sel,
		}, nil
	case *rel.Aggregate:
		q, err := u.toQuery(x.Inputs()[0])
		if err != nil {
			return nil, err
		}
		if len(q.selectSQL) > 0 || len(q.groupBy) > 0 || q.limit != "" || q.offset != "" || len(q.orderBy) > 0 {
			q = u.asSubquery(q, d)
		}
		outNames := fieldNames(x)
		var sel, group []string
		for i, k := range x.GroupKeys {
			col := d.Quote(q.fields[k])
			sel = append(sel, col+" AS "+d.Quote(outNames[i]))
			group = append(group, col)
		}
		for i, call := range x.Calls {
			s, err := u.aggCall(call, q.fields)
			if err != nil {
				return nil, err
			}
			sel = append(sel, s+" AS "+d.Quote(outNames[len(x.GroupKeys)+i]))
		}
		q.selectSQL = sel
		q.groupBy = group
		if len(group) == 0 {
			q.groupBy = nil
		}
		q.fields = outNames
		return q, nil
	case *rel.Sort:
		q, err := u.toQuery(x.Inputs()[0])
		if err != nil {
			return nil, err
		}
		if q.limit != "" || q.offset != "" {
			q = u.asSubquery(q, d)
		}
		for _, fc := range x.Collation {
			dir := ""
			if fc.Direction == trait.Descending {
				dir = " DESC"
			}
			q.orderBy = append(q.orderBy, d.Quote(q.fields[fc.Field])+dir)
		}
		if x.Fetch >= 0 {
			q.limit = fmt.Sprint(x.Fetch)
		}
		if x.Offset > 0 {
			q.offset = fmt.Sprint(x.Offset)
		}
		return q, nil
	case *rel.SetOp:
		var parts []string
		for _, in := range x.Inputs() {
			iq, err := u.toQuery(in)
			if err != nil {
				return nil, err
			}
			parts = append(parts, iq.sql(d))
		}
		op := map[rel.SetOpKind]string{
			rel.UnionOp:     "UNION",
			rel.IntersectOp: "INTERSECT",
			rel.MinusOp:     "EXCEPT",
		}[x.Kind]
		if x.All {
			op += " ALL"
		}
		setSQL := strings.Join(parts, " "+op+" ")
		return &query{
			isSetOp: true,
			setSQL:  setSQL,
			from:    "(" + setSQL + ") AS " + d.Quote(u.newAlias()),
			fields:  fieldNames(x),
		}, nil
	case *rel.Values:
		var rows []string
		for _, t := range x.Tuples {
			vals := make([]string, len(t))
			for i, e := range t {
				s, err := u.expr(e, nil)
				if err != nil {
					return nil, err
				}
				vals[i] = s
			}
			rows = append(rows, "("+strings.Join(vals, ", ")+")")
		}
		return &query{
			from:   "(VALUES " + strings.Join(rows, ", ") + ") AS " + d.Quote(u.newAlias()),
			fields: fieldNames(x),
		}, nil
	}
	if w, ok := n.(rel.Wrapped); ok {
		return u.toQuery(w.Unwrap())
	}
	return nil, fmt.Errorf("rel2sql: cannot unparse %s", n.Op())
}

func isPlainTable(q *query) bool {
	return len(q.selectSQL) == 0 && len(q.where) == 0 && len(q.groupBy) == 0 &&
		len(q.orderBy) == 0 && q.limit == "" && q.offset == "" && !q.isSetOp &&
		!strings.HasPrefix(q.from, "(")
}

func (u *unparser) aggCall(a rex.AggCall, fields []string) (string, error) {
	d := u.dialect
	var arg string
	switch {
	case len(a.Args) == 0:
		arg = "*"
	default:
		cols := make([]string, len(a.Args))
		for i, c := range a.Args {
			if c >= len(fields) {
				return "", fmt.Errorf("rel2sql: aggregate arg $%d out of range", c)
			}
			cols[i] = d.Quote(fields[c])
		}
		arg = strings.Join(cols, ", ")
	}
	if a.Distinct {
		arg = "DISTINCT " + arg
	}
	return a.Func.String() + "(" + arg + ")", nil
}

// expr renders a row expression with unqualified column names from fields.
func (u *unparser) expr(e rex.Node, fields []string) (string, error) {
	cols := make([]string, len(fields))
	for i, f := range fields {
		cols[i] = u.dialect.Quote(f)
	}
	return u.exprQualified(e, cols)
}

// exprQualified renders a row expression; cols[i] is the SQL for input ref i.
func (u *unparser) exprQualified(e rex.Node, cols []string) (string, error) {
	switch x := e.(type) {
	case *rex.InputRef:
		if x.Index >= len(cols) {
			return "", fmt.Errorf("rel2sql: column $%d out of range", x.Index)
		}
		return cols[x.Index], nil
	case *rex.Literal:
		return sqlLiteral(x.Value), nil
	case *rex.DynamicParam:
		return "?", nil
	case *rex.Call:
		return u.call(x, cols)
	}
	return "", fmt.Errorf("rel2sql: cannot unparse expression %T", e)
}

func sqlLiteral(v any) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case string:
		return "'" + strings.ReplaceAll(x, "'", "''") + "'"
	case bool:
		if x {
			return "TRUE"
		}
		return "FALSE"
	default:
		return types.FormatValue(v)
	}
}

func (u *unparser) call(c *rex.Call, cols []string) (string, error) {
	args := make([]string, len(c.Operands))
	for i, o := range c.Operands {
		s, err := u.exprQualified(o, cols)
		if err != nil {
			return "", err
		}
		args[i] = s
	}
	switch c.Op {
	case rex.OpAnd, rex.OpOr:
		return "(" + strings.Join(args, " "+c.Op.Name+" ") + ")", nil
	case rex.OpNot:
		return "(NOT " + args[0] + ")", nil
	case rex.OpIsNull:
		return "(" + args[0] + " IS NULL)", nil
	case rex.OpIsNotNull:
		return "(" + args[0] + " IS NOT NULL)", nil
	case rex.OpCast:
		return "CAST(" + args[0] + " AS " + sqlTypeName(c.T) + ")", nil
	case rex.OpCase:
		var b strings.Builder
		b.WriteString("CASE")
		n := len(args)
		for i := 0; i+1 < n; i += 2 {
			b.WriteString(" WHEN " + args[i] + " THEN " + args[i+1])
		}
		if n%2 == 1 {
			b.WriteString(" ELSE " + args[n-1])
		}
		b.WriteString(" END")
		return b.String(), nil
	case rex.OpItem:
		return args[0] + "[" + args[1] + "]", nil
	case rex.OpLike:
		return "(" + args[0] + " LIKE " + args[1] + ")", nil
	}
	switch c.Op.Kind {
	case rex.KindBinary:
		if len(args) == 2 {
			return "(" + args[0] + " " + c.Op.Symbol() + " " + args[1] + ")", nil
		}
	case rex.KindPrefix:
		return "(" + c.Op.Symbol() + args[0] + ")", nil
	}
	return c.Op.Name + "(" + strings.Join(args, ", ") + ")", nil
}

func sqlTypeName(t *types.Type) string {
	switch t.Kind {
	case types.VarcharKind:
		if t.Precision > 0 {
			return fmt.Sprintf("VARCHAR(%d)", t.Precision)
		}
		return "VARCHAR"
	case types.DoubleKind, types.FloatKind, types.DecimalKind:
		return "DOUBLE"
	case types.BigIntKind, types.IntegerKind, types.TinyIntKind:
		return "BIGINT"
	case types.BooleanKind:
		return "BOOLEAN"
	case types.TimestampKind:
		return "TIMESTAMP"
	}
	return t.Kind.String()
}
