package core_test

import (
	"strings"
	"testing"

	"calcite/internal/core"
)

// TestMemLimitEnv pins the CALCITE_MEM_LIMIT startup contract: a valid value
// becomes the framework budget, a malformed one is a clean NewChecked error
// (and a New panic) naming the bad value.
func TestMemLimitEnv(t *testing.T) {
	t.Setenv("CALCITE_MEM_LIMIT", "64MB")
	fw, err := core.NewChecked()
	if err != nil {
		t.Fatal(err)
	}
	if fw.MemoryLimit != 64<<20 {
		t.Fatalf("limit = %d, want %d", fw.MemoryLimit, 64<<20)
	}

	t.Setenv("CALCITE_MEM_LIMIT", "12parsecs")
	if _, err := core.NewChecked(); err == nil ||
		!strings.Contains(err.Error(), "CALCITE_MEM_LIMIT") ||
		!strings.Contains(err.Error(), "12parsecs") {
		t.Fatalf("NewChecked error = %v, want mention of CALCITE_MEM_LIMIT and the value", err)
	}

	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "CALCITE_MEM_LIMIT") {
			t.Fatalf("New panic = %v, want CALCITE_MEM_LIMIT message", r)
		}
	}()
	core.New()
}
