package core_test

import (
	"fmt"
	"testing"

	"calcite/internal/core"
	"calcite/internal/schema"
	"calcite/internal/types"
)

// newHR builds a framework with the classic emps/depts schema.
func newHR(t testing.TB) *core.Framework {
	t.Helper()
	f := core.New()
	emps := schema.NewMemTable("emps",
		types.Row(
			types.Field{Name: "empid", Type: types.BigInt},
			types.Field{Name: "name", Type: types.Varchar},
			types.Field{Name: "deptno", Type: types.BigInt},
			types.Field{Name: "sal", Type: types.Double},
		),
		[][]any{
			{int64(100), "Bill", int64(10), 10000.0},
			{int64(110), "Theodore", int64(10), 11500.0},
			{int64(150), "Sebastian", int64(10), 7000.0},
			{int64(200), "Eric", int64(20), 8000.0},
			{int64(210), "Jane", int64(30), 9000.0},
		})
	emps.SetStats(schema.Statistics{RowCount: 5, UniqueColumns: [][]int{{0}}})
	depts := schema.NewMemTable("depts",
		types.Row(
			types.Field{Name: "deptno", Type: types.BigInt},
			types.Field{Name: "dname", Type: types.Varchar},
		),
		[][]any{
			{int64(10), "Sales"},
			{int64(20), "Marketing"},
			{int64(30), "Accounts"},
			{int64(40), "Empty"},
		})
	depts.SetStats(schema.Statistics{RowCount: 4, UniqueColumns: [][]int{{0}}})
	f.Catalog.AddTable(emps)
	f.Catalog.AddTable(depts)
	return f
}

func mustRows(t *testing.T, f *core.Framework, sql string, params ...any) [][]any {
	t.Helper()
	res, err := f.Execute(sql, params...)
	if err != nil {
		t.Fatalf("Execute(%q): %v", sql, err)
	}
	return res.Rows
}

func TestSelectFilterProject(t *testing.T) {
	f := newHR(t)
	rows := mustRows(t, f, "SELECT name, sal FROM emps WHERE sal > 8500")
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3: %v", len(rows), rows)
	}
}

func TestArithmeticAndAlias(t *testing.T) {
	f := newHR(t)
	rows := mustRows(t, f, "SELECT empid, sal * 2 AS double_sal FROM emps WHERE empid = 100")
	if len(rows) != 1 {
		t.Fatalf("rows: %v", rows)
	}
	if v, _ := types.AsFloat(rows[0][1]); v != 20000 {
		t.Fatalf("double_sal = %v, want 20000", rows[0][1])
	}
}

func TestJoinUsingFigure4Shape(t *testing.T) {
	// The Figure 4 query shape: join + filter + group + order.
	f := newHR(t)
	rows := mustRows(t, f, `
		SELECT depts.dname, COUNT(*) AS c
		FROM emps JOIN depts ON emps.deptno = depts.deptno
		WHERE emps.sal > 7500
		GROUP BY depts.dname
		ORDER BY COUNT(*) DESC`)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3: %v", len(rows), rows)
	}
	if rows[0][0] != "Sales" {
		t.Fatalf("first group = %v, want Sales", rows[0][0])
	}
	if c, _ := types.AsInt(rows[0][1]); c != 2 {
		t.Fatalf("Sales count = %v, want 2", rows[0][1])
	}
}

func TestLeftJoinNullPadding(t *testing.T) {
	f := newHR(t)
	rows := mustRows(t, f, `
		SELECT d.dname, e.name
		FROM depts d LEFT JOIN emps e ON d.deptno = e.deptno
		WHERE d.dname = 'Empty'`)
	if len(rows) != 1 || rows[0][1] != nil {
		t.Fatalf("left join rows: %v", rows)
	}
}

func TestGroupByHaving(t *testing.T) {
	f := newHR(t)
	rows := mustRows(t, f, `
		SELECT deptno, SUM(sal) AS total
		FROM emps GROUP BY deptno HAVING SUM(sal) > 10000
		ORDER BY deptno`)
	if len(rows) != 1 {
		t.Fatalf("rows: %v", rows)
	}
	if d, _ := types.AsInt(rows[0][0]); d != 10 {
		t.Fatalf("deptno = %v", rows[0][0])
	}
}

func TestGlobalAggregate(t *testing.T) {
	f := newHR(t)
	rows := mustRows(t, f, "SELECT COUNT(*), MIN(sal), MAX(sal), AVG(sal) FROM emps")
	if len(rows) != 1 {
		t.Fatalf("rows: %v", rows)
	}
	if c, _ := types.AsInt(rows[0][0]); c != 5 {
		t.Fatalf("count = %v", rows[0][0])
	}
	if mn, _ := types.AsFloat(rows[0][1]); mn != 7000 {
		t.Fatalf("min = %v", rows[0][1])
	}
	if av, _ := types.AsFloat(rows[0][3]); av != 9100 {
		t.Fatalf("avg = %v", rows[0][3])
	}
}

func TestDistinctAndSetOps(t *testing.T) {
	f := newHR(t)
	rows := mustRows(t, f, "SELECT DISTINCT deptno FROM emps ORDER BY deptno")
	if len(rows) != 3 {
		t.Fatalf("distinct rows: %v", rows)
	}
	rows = mustRows(t, f, `
		SELECT deptno FROM emps
		UNION
		SELECT deptno FROM depts
		ORDER BY 1`)
	if len(rows) != 4 {
		t.Fatalf("union rows: %v", rows)
	}
	rows = mustRows(t, f, "SELECT deptno FROM depts EXCEPT SELECT deptno FROM emps")
	if len(rows) != 1 {
		t.Fatalf("except rows: %v", rows)
	}
	if d, _ := types.AsInt(rows[0][0]); d != 40 {
		t.Fatalf("except row: %v", rows[0])
	}
	rows = mustRows(t, f, "SELECT deptno FROM depts INTERSECT SELECT deptno FROM emps ORDER BY 1")
	if len(rows) != 3 {
		t.Fatalf("intersect rows: %v", rows)
	}
}

func TestOrderLimitOffset(t *testing.T) {
	f := newHR(t)
	rows := mustRows(t, f, "SELECT name FROM emps ORDER BY sal DESC LIMIT 2 OFFSET 1")
	if len(rows) != 2 || rows[0][0] != "Bill" || rows[1][0] != "Jane" {
		t.Fatalf("rows: %v", rows)
	}
}

func TestOrderByExpression(t *testing.T) {
	f := newHR(t)
	rows := mustRows(t, f, "SELECT name FROM emps ORDER BY sal - empid DESC LIMIT 1")
	if len(rows) != 1 || rows[0][0] != "Theodore" {
		t.Fatalf("rows: %v", rows)
	}
	// Hidden sort column must not leak.
	res, _ := f.Execute("SELECT name FROM emps ORDER BY sal - empid DESC LIMIT 1")
	if len(res.Columns) != 1 {
		t.Fatalf("columns leaked: %v", res.Columns)
	}
}

func TestSubqueryInFrom(t *testing.T) {
	f := newHR(t)
	rows := mustRows(t, f, `
		SELECT t.deptno, t.total FROM (
			SELECT deptno, SUM(sal) AS total FROM emps GROUP BY deptno
		) AS t WHERE t.total > 8500 ORDER BY t.deptno`)
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
}

func TestCaseCastCoalesceFunctions(t *testing.T) {
	f := newHR(t)
	rows := mustRows(t, f, `
		SELECT name,
		       CASE WHEN sal >= 10000 THEN 'high' ELSE 'low' END AS band,
		       CAST(sal AS BIGINT) AS isal,
		       UPPER(name) AS uname
		FROM emps WHERE empid = 110`)
	r := rows[0]
	if r[1] != "high" {
		t.Fatalf("band = %v", r[1])
	}
	if v, ok := r[2].(int64); !ok || v != 11500 {
		t.Fatalf("isal = %v (%T)", r[2], r[2])
	}
	if r[3] != "THEODORE" {
		t.Fatalf("uname = %v", r[3])
	}
}

func TestInBetweenLike(t *testing.T) {
	f := newHR(t)
	rows := mustRows(t, f, "SELECT name FROM emps WHERE deptno IN (20, 30) ORDER BY name")
	if len(rows) != 2 {
		t.Fatalf("in rows: %v", rows)
	}
	rows = mustRows(t, f, "SELECT name FROM emps WHERE sal BETWEEN 8000 AND 10000 ORDER BY name")
	if len(rows) != 3 {
		t.Fatalf("between rows: %v", rows)
	}
	rows = mustRows(t, f, "SELECT name FROM emps WHERE name LIKE 'S%'")
	if len(rows) != 1 || rows[0][0] != "Sebastian" {
		t.Fatalf("like rows: %v", rows)
	}
}

func TestValuesAndSelectWithoutFrom(t *testing.T) {
	f := newHR(t)
	rows := mustRows(t, f, "VALUES (1, 'a'), (2, 'b')")
	if len(rows) != 2 {
		t.Fatalf("values rows: %v", rows)
	}
	rows = mustRows(t, f, "SELECT 1 + 2 AS three")
	if v, _ := types.AsInt(rows[0][0]); v != 3 {
		t.Fatalf("select w/o from: %v", rows)
	}
}

func TestWindowFunction(t *testing.T) {
	f := newHR(t)
	rows := mustRows(t, f, `
		SELECT name, SUM(sal) OVER (PARTITION BY deptno ORDER BY empid) AS running
		FROM emps ORDER BY empid`)
	if len(rows) != 5 {
		t.Fatalf("rows: %v", rows)
	}
	// dept 10 running sums: 10000, 21500, 28500
	want := []float64{10000, 21500, 28500, 8000, 9000}
	for i, w := range want {
		got, _ := types.AsFloat(rows[i][1])
		if got != w {
			t.Errorf("row %d running = %v, want %v (%v)", i, rows[i][1], w, rows)
		}
	}
}

func TestDDLInsertExplain(t *testing.T) {
	f := newHR(t)
	if _, err := f.Execute("CREATE TABLE scratch (id BIGINT, label VARCHAR(10))"); err != nil {
		t.Fatalf("create table: %v", err)
	}
	if _, err := f.Execute("INSERT INTO scratch VALUES (1, 'one'), (2, 'two')"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	rows := mustRows(t, f, "SELECT label FROM scratch WHERE id = 2")
	if len(rows) != 1 || rows[0][0] != "two" {
		t.Fatalf("rows: %v", rows)
	}
	res, err := f.Execute("EXPLAIN SELECT * FROM scratch")
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("explain: %v %v", err, res)
	}
}

func TestViews(t *testing.T) {
	f := newHR(t)
	if _, err := f.Execute("CREATE VIEW highpaid AS SELECT name, sal FROM emps WHERE sal > 9000"); err != nil {
		t.Fatalf("create view: %v", err)
	}
	rows := mustRows(t, f, "SELECT name FROM highpaid ORDER BY name")
	if len(rows) != 2 {
		t.Fatalf("view rows: %v", rows)
	}
}

func TestMaterializedView(t *testing.T) {
	f := newHR(t)
	if _, err := f.Execute("CREATE MATERIALIZED VIEW dept_sal AS SELECT deptno, SUM(sal) AS total, COUNT(*) AS cnt FROM emps GROUP BY deptno"); err != nil {
		t.Fatalf("create mv: %v", err)
	}
	// The exact query should be answered from the view.
	rows := mustRows(t, f, "SELECT deptno, SUM(sal) AS total, COUNT(*) AS cnt FROM emps GROUP BY deptno ORDER BY deptno")
	if len(rows) != 3 {
		t.Fatalf("mv rows: %v", rows)
	}
	if tot, _ := types.AsFloat(rows[0][1]); tot != 28500 {
		t.Fatalf("dept 10 total: %v", rows[0][1])
	}
}

func TestParameters(t *testing.T) {
	f := newHR(t)
	rows := mustRows(t, f, "SELECT name FROM emps WHERE deptno = ? ORDER BY name", int64(10))
	if len(rows) != 3 {
		t.Fatalf("param rows: %v", rows)
	}
}

func TestErrorMessages(t *testing.T) {
	f := newHR(t)
	cases := []string{
		"SELECT nosuch FROM emps",
		"SELECT name FROM nosuchtable",
		"SELECT name FROM emps WHERE sal",               // non-boolean WHERE
		"SELECT deptno, name FROM emps GROUP BY deptno", // ungrouped column
		"SELECT * FROM emps WHERE name > 5 AND TRUE AND 'x' = 1 OR deptno",
	}
	for _, sql := range cases {
		if _, err := f.Execute(sql); err == nil {
			t.Errorf("expected error for %q", sql)
		}
	}
}

func TestHepPlannerMode(t *testing.T) {
	f := newHR(t)
	f.Planner = core.HeuristicHep
	rows := mustRows(t, f, "SELECT name FROM emps WHERE sal > 8500 ORDER BY name")
	if len(rows) != 3 {
		t.Fatalf("hep rows: %v", rows)
	}
}

func TestVolcanoHeuristicFixpoint(t *testing.T) {
	f := newHR(t)
	f.FixPoint = 1 // plan.Heuristic
	f.Delta = 0.05
	rows := mustRows(t, f, "SELECT COUNT(*) FROM emps JOIN depts ON emps.deptno = depts.deptno")
	if c, _ := types.AsInt(rows[0][0]); c != 5 {
		t.Fatalf("count: %v", rows)
	}
}

func TestLargerJoin(t *testing.T) {
	f := core.New()
	n := 500
	rowsA := make([][]any, n)
	rowsB := make([][]any, n)
	for i := 0; i < n; i++ {
		rowsA[i] = []any{int64(i), fmt.Sprintf("a%d", i)}
		rowsB[i] = []any{int64(i % 50), fmt.Sprintf("b%d", i)}
	}
	f.Catalog.AddTable(schema.NewMemTable("big_a", types.Row(
		types.Field{Name: "id", Type: types.BigInt},
		types.Field{Name: "va", Type: types.Varchar}), rowsA))
	f.Catalog.AddTable(schema.NewMemTable("big_b", types.Row(
		types.Field{Name: "aid", Type: types.BigInt},
		types.Field{Name: "vb", Type: types.Varchar}), rowsB))
	rows := mustRows(t, f, "SELECT COUNT(*) FROM big_a JOIN big_b ON big_a.id = big_b.aid")
	if c, _ := types.AsInt(rows[0][0]); c != int64(n) {
		t.Fatalf("join count = %v, want %d", rows[0][0], n)
	}
}
