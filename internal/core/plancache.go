package core

// The prepared-plan cache: repeated statements skip the parse → validate →
// optimize pipeline and jump straight to execution of the cached physical
// plan. Entries are keyed on the normalized-SQL fingerprint (obs.Fingerprint:
// literals and whitespace canonicalized), with the exact statement text kept
// as a guard — two statements that normalize identically but differ in
// literals plan differently, so only a byte-identical statement may reuse a
// plan. Prepared statements with "?" parameters are byte-identical across
// executions, which is exactly the repeated-statement class the cache is for:
// parameters bind at execution time, never at plan time.
//
// Physical plan trees are immutable after optimization — operators compile
// expressions and allocate cursor state at bind time, and the parallel
// rewrite wraps (never mutates) the tree per execution — so one cached plan
// may execute on any number of concurrent queries.
//
// Any statement that changes what plans mean — DDL, ANALYZE (statistics
// drive join order), INSERT (invalidates column stats), adapter or view
// registration — flushes the whole cache: invalidation is rare and cheap,
// staleness is not.

import (
	"container/list"
	"sync"
	"sync/atomic"

	"calcite/internal/feedback"
	"calcite/internal/obs"
	"calcite/internal/rel"
)

// DefaultPlanCacheSize bounds the plan cache's entry count.
const DefaultPlanCacheSize = 256

// planEntry is one cached statement: the exact SQL (collision/literal guard),
// the optimized physical plan, its output column names, and the plan's
// per-operator estimate table (so cache hits stamp spans and harvest
// feedback without re-planning).
type planEntry struct {
	sql     string
	plan    rel.Node
	columns []string
	est     *feedback.PlanEstimates
}

// PlanCache is a concurrency-safe LRU of optimized plans with hit/miss/
// eviction/invalidation counters, sampled by the metrics registry through
// function-backed instruments.
type PlanCache struct {
	mu    sync.Mutex
	max   int
	order *list.List               // front = most recently used
	byKey map[string]*list.Element // fingerprint → element holding *planEntry

	hits              atomic.Int64
	misses            atomic.Int64
	evictions         atomic.Int64
	invalidations     atomic.Int64
	feedbackEvictions atomic.Int64
}

type planElem struct {
	key string
	ent *planEntry
}

// NewPlanCache builds a cache bounded to max entries (<= 0 uses
// DefaultPlanCacheSize).
func NewPlanCache(max int) *PlanCache {
	if max <= 0 {
		max = DefaultPlanCacheSize
	}
	return &PlanCache{max: max, order: list.New(), byKey: map[string]*list.Element{}}
}

// Get returns the cached plan for sql, if the fingerprint maps to an entry
// whose statement text matches byte-for-byte.
func (c *PlanCache) Get(sql string) (*planEntry, bool) {
	key := obs.Fingerprint(sql)
	c.mu.Lock()
	el, ok := c.byKey[key]
	if ok && el.Value.(*planElem).ent.sql == sql {
		c.order.MoveToFront(el)
		ent := el.Value.(*planElem).ent
		c.mu.Unlock()
		c.hits.Add(1)
		return ent, true
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// Put stores an optimized plan for sql, evicting the least recently used
// entry beyond capacity. A fingerprint collision (same key, different text)
// is resolved in favor of the newest statement.
func (c *PlanCache) Put(sql string, plan rel.Node, columns []string, est *feedback.PlanEstimates) {
	key := obs.Fingerprint(sql)
	ent := &planEntry{sql: sql, plan: plan, columns: columns, est: est}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*planElem).ent = ent
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&planElem{key: key, ent: ent})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*planElem).key)
		c.evictions.Add(1)
	}
}

// EvictFingerprint drops the entry for one statement fingerprint — the
// feedback loop's targeted invalidation: the next execution of that
// statement re-plans with corrected estimates while the rest of the cache
// stays warm. Reports whether an entry was present.
func (c *PlanCache) EvictFingerprint(key string) bool {
	c.mu.Lock()
	el, ok := c.byKey[key]
	if ok {
		c.order.Remove(el)
		delete(c.byKey, key)
	}
	c.mu.Unlock()
	if ok {
		c.feedbackEvictions.Add(1)
	}
	return ok
}

// Invalidate drops every entry (DDL, ANALYZE, DML, adapter registration).
func (c *PlanCache) Invalidate() {
	c.mu.Lock()
	if c.order.Len() > 0 {
		c.order.Init()
		c.byKey = map[string]*list.Element{}
		c.invalidations.Add(1)
	}
	c.mu.Unlock()
}

// Len reports the current entry count.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Counters is a point-in-time read of the cache's cumulative counters.
type PlanCacheCounters struct {
	Hits, Misses, Evictions, Invalidations int64
	// FeedbackEvictions counts targeted evictions requested by the
	// cardinality-feedback loop (EvictFingerprint).
	FeedbackEvictions int64
}

// Counters returns the cumulative hit/miss/eviction/invalidation counts.
func (c *PlanCache) Counters() PlanCacheCounters {
	return PlanCacheCounters{
		Hits:              c.hits.Load(),
		Misses:            c.misses.Load(),
		Evictions:         c.evictions.Load(),
		Invalidations:     c.invalidations.Load(),
		FeedbackEvictions: c.feedbackEvictions.Load(),
	}
}
