package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"calcite/internal/schema"
	"calcite/internal/types"
)

func cacheTestFramework(t *testing.T) *Framework {
	t.Helper()
	f := New()
	f.Catalog.AddTable(schema.NewMemTable("t",
		types.Row(
			types.Field{Name: "id", Type: types.BigInt.WithNullable(true)},
			types.Field{Name: "v", Type: types.Double.WithNullable(true)},
		),
		[][]any{
			{int64(1), 1.5},
			{int64(2), 2.5},
			{int64(3), 3.5},
		}))
	return f
}

// TestPlanCacheHitSkipsPlanning re-runs one statement and checks the second
// execution is a hit with identical results and zero plan/optimize time.
func TestPlanCacheHitSkipsPlanning(t *testing.T) {
	f := cacheTestFramework(t)
	const q = "SELECT id FROM t WHERE v > 2 ORDER BY id"
	first, err := f.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := f.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Rows, second.Rows) {
		t.Fatalf("cached run differs: %v vs %v", first.Rows, second.Rows)
	}
	c := f.PlanCache().Counters()
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("counters = %+v, want 1 hit / 1 miss", c)
	}
	// The cached trace records the hit and skips the planning stages.
	traces := f.Obs().Recent.Snapshot()
	if len(traces) < 1 || !traces[0].Cached {
		t.Fatalf("latest trace not marked cached: %+v", traces[0])
	}
	if traces[0].PlanNs != 0 || traces[0].OptimizeNs != 0 {
		t.Fatalf("cached trace has planning time: plan=%d optimize=%d",
			traces[0].PlanNs, traces[0].OptimizeNs)
	}
}

// TestPlanCacheParamsRebind verifies the big win: a prepared statement's plan
// is reused across executions with different parameter bindings.
func TestPlanCacheParamsRebind(t *testing.T) {
	f := cacheTestFramework(t)
	const q = "SELECT id FROM t WHERE v > ? ORDER BY id"
	r1, err := f.Execute(q, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.Execute(q, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != 3 || len(r2.Rows) != 1 {
		t.Fatalf("param rebind wrong: %v / %v", r1.Rows, r2.Rows)
	}
	if c := f.PlanCache().Counters(); c.Hits != 1 {
		t.Fatalf("second binding should hit: %+v", c)
	}
}

// TestPlanCacheLiteralsDoNotAlias is the correctness guard: two statements
// that normalize to the same fingerprint but differ in literal values must
// never share a plan (literals are baked into compiled expressions).
func TestPlanCacheLiteralsDoNotAlias(t *testing.T) {
	f := cacheTestFramework(t)
	r1, err := f.Execute("SELECT id FROM t WHERE v > 1.0")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.Execute("SELECT id FROM t WHERE v > 3.0")
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != 3 || len(r2.Rows) != 1 {
		t.Fatalf("literal variants aliased: %v / %v", r1.Rows, r2.Rows)
	}
	if c := f.PlanCache().Counters(); c.Hits != 0 {
		t.Fatalf("different literals must miss, got %+v", c)
	}
}

// TestPlanCacheInvalidation checks every statement class that must flush:
// DDL, ANALYZE and INSERT.
func TestPlanCacheInvalidation(t *testing.T) {
	f := cacheTestFramework(t)
	const q = "SELECT COUNT(*) FROM t"
	if _, err := f.Execute(q); err != nil {
		t.Fatal(err)
	}
	if f.PlanCache().Len() != 1 {
		t.Fatalf("plan not cached")
	}
	// INSERT flushes and the re-run sees the new row.
	if _, err := f.Execute("INSERT INTO t VALUES (4, 4.5)"); err != nil {
		t.Fatal(err)
	}
	if f.PlanCache().Len() != 0 {
		t.Fatal("INSERT did not invalidate the plan cache")
	}
	res, err := f.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Rows[0][0].(int64); got != 4 {
		t.Fatalf("count after insert = %v, want 4", res.Rows[0][0])
	}
	for _, ddl := range []string{"ANALYZE TABLE t", "CREATE TABLE t2 (x BIGINT)"} {
		if _, err := f.Execute(q); err != nil { // repopulate
			t.Fatal(err)
		}
		if f.PlanCache().Len() == 0 {
			t.Fatalf("cache empty before %q", ddl)
		}
		if _, err := f.Execute(ddl); err != nil {
			t.Fatal(err)
		}
		if f.PlanCache().Len() != 0 {
			t.Fatalf("%q did not invalidate the plan cache", ddl)
		}
	}
}

// TestPlanCacheLRUEviction fills the cache beyond its cap and checks the
// oldest entries leave first.
func TestPlanCacheLRUEviction(t *testing.T) {
	f := cacheTestFramework(t)
	f.PlanCacheSize = 4
	for i := 0; i < 10; i++ {
		// Distinct column aliases defeat literal normalization, so each
		// statement is a distinct fingerprint.
		q := fmt.Sprintf("SELECT id AS a%d FROM t", i)
		if _, err := f.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.PlanCache().Len(); got != 4 {
		t.Fatalf("cache size = %d, want 4", got)
	}
	c := f.PlanCache().Counters()
	if c.Evictions != 6 {
		t.Fatalf("evictions = %d, want 6", c.Evictions)
	}
	// Newest is still a hit; oldest re-plans.
	if _, err := f.Execute("SELECT id AS a9 FROM t"); err != nil {
		t.Fatal(err)
	}
	if got := f.PlanCache().Counters().Hits; got != 1 {
		t.Fatalf("hits = %d, want 1 (newest retained)", got)
	}
	if _, err := f.Execute("SELECT id AS a0 FROM t"); err != nil {
		t.Fatal(err)
	}
	if got := f.PlanCache().Counters().Hits; got != 1 {
		t.Fatalf("oldest entry should have been evicted (hits=%d)", got)
	}
}

// TestPlanCacheConcurrentReuse executes one cached plan from many goroutines
// at once — the sharing contract the serving tier depends on (run under
// -race in CI).
func TestPlanCacheConcurrentReuse(t *testing.T) {
	f := cacheTestFramework(t)
	const q = "SELECT id, v FROM t WHERE v > ? ORDER BY id"
	want, err := f.Execute(q, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				res, err := f.Execute(q, 0.0)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res.Rows, want.Rows) {
					errs <- fmt.Errorf("concurrent cached run differs: %v", res.Rows)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPlanCacheDisabled checks the A/B switch: with the cache off every
// execution re-plans.
func TestPlanCacheDisabled(t *testing.T) {
	f := cacheTestFramework(t)
	f.DisablePlanCache = true
	const q = "SELECT id FROM t"
	for i := 0; i < 3; i++ {
		if _, err := f.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	if c := f.PlanCache().Counters(); c.Hits != 0 || c.Misses != 0 {
		t.Fatalf("disabled cache was consulted: %+v", c)
	}
}
