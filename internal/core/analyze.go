package core

import (
	"fmt"
	"strings"

	"calcite/internal/parser"
	"calcite/internal/schema"
	"calcite/internal/stats"
)

// analyzeTable implements ANALYZE TABLE: it scans the target table once
// (reusing the vectorized ScanBatches path where the table supports it),
// collects row count, per-column null counts, min/max, NDV sketches and
// equi-depth histograms, and installs them as the table's statistics. The
// collected statistics are what turn the §6 metadata providers' textbook
// constants into data-derived estimates.
func (f *Framework) analyzeTable(s *parser.AnalyzeStmt) (*Result, error) {
	table, path, err := schema.Resolve(f.Catalog, s.Table)
	if err != nil {
		return nil, err
	}
	setter, ok := table.(schema.StatsSettable)
	if !ok {
		return nil, fmt.Errorf("core: table %q does not support ANALYZE (no settable statistics)",
			strings.Join(path, "."))
	}
	width := len(table.RowType().Fields)
	collector := stats.NewCollector(width)

	switch t := table.(type) {
	case schema.BatchScannableTable:
		cur, err := t.ScanBatches(schema.DefaultBatchSize)
		if err != nil {
			return nil, err
		}
		defer cur.Close()
		for {
			b, err := cur.NextBatch()
			if err == schema.Done {
				break
			}
			if err != nil {
				return nil, err
			}
			cols := b.BoxedCols()
			for c := 0; c < b.Width() && c < width; c++ {
				collector.AddCol(c, cols[c], b.Sel)
			}
			collector.AddRows(b.NumRows())
		}
	case schema.ScannableTable:
		cur, err := t.Scan()
		if err != nil {
			return nil, err
		}
		defer cur.Close()
		for {
			row, err := cur.Next()
			if err == schema.Done {
				break
			}
			if err != nil {
				return nil, err
			}
			collector.AddRow(row)
		}
	default:
		return nil, fmt.Errorf("core: table %q is not scannable", strings.Join(path, "."))
	}

	cols, rows := collector.Finish()
	newStats := table.Stats() // preserve declared unique-key hints
	newStats.RowCount = rows
	newStats.Columns = cols
	newStats.Analyzed = true
	setter.SetStats(newStats)
	return &Result{
		Columns: []string{"TABLE", "ROWS"},
		Rows:    [][]any{{strings.Join(path, "."), int64(rows)}},
	}, nil
}
