package core

// Plan-quality feedback wiring: the Framework owns one feedback.Store. At
// plan time the store's corrections enter the metadata provider chain
// (NewMetaQuery) and recorded build overshoots swap hash-join build/probe
// sides (applyAdaptiveTactics); at plan time the final physical tree's
// estimates are tabulated by stable operator path (planEstimates); after
// every traced execution the finished snapshot is harvested against that
// table, and a statement whose estimates drifted past the replan threshold
// has its cached plan evicted so the next execution re-plans with the
// corrected cardinalities.

import (
	"calcite/internal/exec"
	"calcite/internal/feedback"
	"calcite/internal/meta"
	"calcite/internal/obs"
	"calcite/internal/rel"
	"calcite/internal/rex"
)

// Feedback returns the framework's cardinality-feedback store, creating it
// on first use. The store exists (and serves empty reports) even when
// feedback is disabled, so observability endpoints never nil-check.
func (f *Framework) Feedback() *feedback.Store {
	f.fbMu.Lock()
	defer f.fbMu.Unlock()
	if f.fbStore == nil {
		f.fbStore = feedback.NewStore(feedback.Options{})
	}
	return f.fbStore
}

// feedbackIfEnabled returns the store, or nil when feedback is disabled.
func (f *Framework) feedbackIfEnabled() *feedback.Store {
	if f.DisableFeedback {
		return nil
	}
	return f.Feedback()
}

// planEstimates tabulates the optimized plan's per-operator row estimates by
// stable path id — the table spans are stamped from and harvests match
// against. Returns nil when feedback is disabled (nothing stamps, nothing
// harvests).
func (f *Framework) planEstimates(fingerprint string, physical rel.Node, mq *meta.Query) *feedback.PlanEstimates {
	if f.feedbackIfEnabled() == nil || physical == nil {
		return nil
	}
	return feedback.EstimatePlan(fingerprint, physical, mq.RowCount)
}

// harvestFeedback folds a finished execution into the feedback store and,
// when the store requests it (estimation error past the replan threshold or
// a recorded build overshoot), evicts the statement's cached plan so the
// next execution re-plans with corrected estimates.
func (f *Framework) harvestFeedback(snap *obs.TraceSnapshot, est *feedback.PlanEstimates) {
	fb := f.feedbackIfEnabled()
	if fb == nil || snap == nil || est == nil {
		return
	}
	if fb.Harvest(snap, est) {
		if cache := f.planCacheIfEnabled(); cache != nil {
			cache.EvictFingerprint(snap.Fingerprint)
		}
	}
}

// applyAdaptiveTactics is the post-optimization adaptive pass: inner hash
// joins whose shape has a recorded build-side overshoot get their build and
// probe sides swapped (with a projection restoring the output order), but
// only while the session's estimates — corrections included — still rank the
// build side larger, so an already-corrected plan is left alone. This is the
// 2-way-join counterpart of the correction loop: the join-order enumeration
// keeps two-table joins in written order, so corrected cardinalities alone
// never fix a backwards build side.
func (f *Framework) applyAdaptiveTactics(physical rel.Node, mq *meta.Query) rel.Node {
	fb := f.feedbackIfEnabled()
	if fb == nil || fb.SwapCount() == 0 || physical == nil {
		return physical
	}
	return rel.TransformUp(physical, func(n rel.Node) rel.Node {
		j, ok := n.(*exec.HashJoin)
		if !ok || j.Kind != rel.InnerJoin {
			return n
		}
		if !fb.PreferSwap(feedback.NodeKey(j)) {
			return n
		}
		if mq.RowCount(j.Right()) <= mq.RowCount(j.Left()) {
			return n
		}
		nLeft := rel.FieldCount(j.Left())
		nRight := rel.FieldCount(j.Right())
		mapping := make(map[int]int, nLeft+nRight)
		for i := 0; i < nLeft; i++ {
			mapping[i] = nRight + i
		}
		for k := 0; k < nRight; k++ {
			mapping[nLeft+k] = k
		}
		swapped := exec.NewHashJoin(rel.InnerJoin, j.Right(), j.Left(),
			rex.Remap(j.Condition, mapping))
		fields := j.RowType().Fields
		exprs := make([]rex.Node, len(fields))
		names := make([]string, len(fields))
		for i := 0; i < nLeft; i++ {
			exprs[i] = rex.NewInputRef(nRight+i, fields[i].Type)
			names[i] = fields[i].Name
		}
		for k := 0; k < nRight; k++ {
			exprs[nLeft+k] = rex.NewInputRef(k, fields[nLeft+k].Type)
			names[nLeft+k] = fields[nLeft+k].Name
		}
		fb.NoteSwapApplied()
		return exec.NewProject(swapped, exprs, names)
	})
}
