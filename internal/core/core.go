// Package core wires the framework components of Figure 1 of the paper into
// a query lifecycle: SQL parser/validator → sql-to-rel converter → optimizer
// (rules + metadata providers + planner engines) → enumerable executor. It
// also hosts the adapter registry (schemas + pushdown rules + converters)
// and the DDL surface listed in §9 (CREATE TABLE, CREATE [MATERIALIZED]
// VIEW, INSERT, EXPLAIN).
package core

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"calcite/internal/exec"
	"calcite/internal/feedback"
	"calcite/internal/memory"
	"calcite/internal/meta"
	"calcite/internal/mv"
	"calcite/internal/obs"
	"calcite/internal/parallel"
	"calcite/internal/parser"
	"calcite/internal/plan"
	"calcite/internal/rel"
	"calcite/internal/rules"
	"calcite/internal/schema"
	"calcite/internal/sql2rel"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// ConverterReg registers a convention converter factory with the planner.
type ConverterReg struct {
	From, To trait.Convention
	Factory  func(input rel.Node) rel.Node
}

// Adapter is the contract an adapter package fulfils to join the framework
// (§5, Figure 3): a schema of tables, planner rules that push operators into
// the backend, converters that move rows out of the backend's convention,
// and optional metadata providers with backend statistics.
type Adapter interface {
	// AdapterSchema returns the schema exposing the backend's tables.
	AdapterSchema() schema.Schema
	// Rules returns the adapter's planner rules.
	Rules() []plan.Rule
	// Converters returns the adapter's convention converters.
	Converters() []ConverterReg
}

// MetaAdapter is an Adapter that also contributes metadata providers.
type MetaAdapter interface {
	Adapter
	MetaProviders() []meta.Provider
}

// PlannerChoice selects the physical planning engine.
type PlannerChoice int

const (
	// VolcanoCostBased uses the cost-based engine (default).
	VolcanoCostBased PlannerChoice = iota
	// HeuristicHep uses the exhaustive rule-driven engine.
	HeuristicHep
)

// Framework is a configured instance of the query processing system.
type Framework struct {
	// Catalog is the root schema; adapters add sub-schemas.
	Catalog *schema.BaseSchema
	// LogicalRules run in the logical rewrite phase (Hep).
	LogicalRules []plan.Rule
	// PhysicalRules run in the implementation phase.
	PhysicalRules []plan.Rule
	// Converters available to the physical planner.
	Converters []ConverterReg
	// Providers are extra metadata providers (adapters, tests).
	Providers []meta.Provider
	// Planner selects the physical engine.
	Planner PlannerChoice
	// FixPoint configures the Volcano fix point (Exhaustive/Heuristic δ).
	FixPoint plan.FixPointMode
	// Delta is the Heuristic-mode improvement threshold.
	Delta float64
	// DisableLogicalPhase skips logical rewrites (for ablations).
	DisableLogicalPhase bool
	// DisableJoinReorder skips the cost-based join-order enumeration phase
	// (MultiJoin collapse + LoptOptimizeJoinRule) that follows the logical
	// rewrites.
	DisableJoinReorder bool
	// MetadataCache toggles the metadata memo cache (experiment E8).
	MetadataCache bool
	// RowMode forces the row-at-a-time execution path, disabling the default
	// vectorized batch convention (debugging and A/B measurement). It also
	// disables morsel-driven parallelism.
	RowMode bool
	// BatchSize overrides the vectorized path's rows-per-batch; <= 0 uses
	// schema.DefaultBatchSize.
	BatchSize int
	// Parallelism is the worker count for morsel-driven parallel execution:
	// 0 uses runtime.GOMAXPROCS(0); 1 forces the serial execution paths.
	Parallelism int
	// MemoryLimit is the framework-wide execution-memory budget in bytes,
	// shared by all concurrent queries (0 = unlimited). Prefer
	// SetMemoryLimit, which also updates the live pool.
	MemoryLimit int64
	// QueryMemoryLimit caps each query's share of the budget in bytes
	// (0 = bounded by MemoryLimit only).
	QueryMemoryLimit int64
	// DisableSpill turns off overflow-to-disk: a query exceeding its budget
	// fails with a "memory budget exceeded" error instead of spilling.
	DisableSpill bool
	// WindowRecompute forces the window operator's per-frame recompute path
	// instead of incremental frame maintenance (the A/B baseline of the
	// window benchmarks).
	WindowRecompute bool

	// SlowQueryThreshold marks queries whose end-to-end latency meets or
	// exceeds it as slow: they are retained in the observability engine's
	// slow ring and written to SlowQueryLog (0 disables).
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives one JSON line per slow query (nil keeps only
	// the in-memory slow ring).
	SlowQueryLog io.Writer

	// poolMu guards the lazily created shared worker pool.
	poolMu sync.Mutex
	pool   *parallel.Pool

	// memPoolMu guards the lazily created shared memory pool.
	memPoolMu sync.Mutex
	memPool   *memory.Pool

	// PlanCacheSize bounds the prepared-plan cache's entry count (<= 0 uses
	// DefaultPlanCacheSize); DisablePlanCache turns the cache off entirely
	// (every statement re-plans — the A/B baseline).
	PlanCacheSize    int
	DisablePlanCache bool

	// planCacheMu guards the lazily created prepared-plan cache.
	planCacheMu sync.Mutex
	planCache   *PlanCache

	// DisableFeedback turns off the cardinality-feedback loop: traces are
	// not harvested, no corrections enter the metadata chain, and no
	// adaptive build/probe swaps are applied (the A/B baseline).
	DisableFeedback bool

	// fbMu guards the lazily created cardinality-feedback store.
	fbMu    sync.Mutex
	fbStore *feedback.Store

	// obsMu guards the lazily created observability engine.
	obsMu  sync.Mutex
	obsEng *obs.Engine

	// Views holds materialized views registered via CREATE MATERIALIZED
	// VIEW or adapter declarations.
	Views *mv.Registry

	// LastPlanner exposes statistics of the most recent physical planning
	// run (for tests and benchmarks).
	LastPlanner *plan.VolcanoPlanner
}

// New returns a framework with the default rule sets, the enumerable
// execution convention, and an empty catalog. The CALCITE_MEM_LIMIT
// environment variable ("64MB", "1GiB", plain bytes), when set, becomes the
// default framework memory limit — the hook CI uses to run the whole test
// corpus under memory governance.
func New() *Framework {
	f, err := NewChecked()
	if err != nil {
		// Refusing to start beats running ungoverned: a typo'd limit in
		// the CI governance job would otherwise silently test nothing.
		// Binaries that want a clean startup error use NewChecked.
		panic(err.Error())
	}
	return f
}

// NewChecked is New with configuration errors (today: a malformed
// CALCITE_MEM_LIMIT) returned instead of panicking, so binaries can print a
// clean startup error.
func NewChecked() (*Framework, error) {
	f := &Framework{
		Catalog:       schema.NewBaseSchema("root"),
		LogicalRules:  rules.DefaultLogicalRules(),
		PhysicalRules: exec.Rules(),
		Providers:     []meta.Provider{exec.MetadataProvider()},
		MetadataCache: true,
		Views:         mv.NewRegistry(),
	}
	if s := os.Getenv("CALCITE_MEM_LIMIT"); s != "" {
		n, err := memory.ParseBytes(s)
		if err != nil {
			return nil, fmt.Errorf("calcite: invalid CALCITE_MEM_LIMIT %q: %v", s, err)
		}
		f.MemoryLimit = n
	}
	return f, nil
}

// SetMemoryLimit sets the framework-wide execution-memory budget in bytes
// (0 = unlimited), updating the live pool if one exists.
func (f *Framework) SetMemoryLimit(n int64) {
	f.MemoryLimit = n
	f.memPoolMu.Lock()
	if f.memPool != nil {
		f.memPool.SetLimit(n)
	}
	f.memPoolMu.Unlock()
}

// MemoryPool returns the framework's shared memory pool, creating it on
// first use. With no framework-wide limit configured the pool is unlimited
// but still accounts usage, so the memory metrics cover ungoverned
// deployments too.
func (f *Framework) MemoryPool() *memory.Pool {
	f.memPoolMu.Lock()
	defer f.memPoolMu.Unlock()
	if f.memPool == nil {
		f.memPool = memory.NewPool(f.MemoryLimit)
	}
	return f.memPool
}

// memoryGoverned reports whether queries run under a memory budget.
func (f *Framework) memoryGoverned() bool {
	return f.MemoryLimit > 0 || f.QueryMemoryLimit > 0
}

// newAllocator opens a per-query memory account, or nil when ungoverned.
// forceTracking creates an unlimited tracking allocator even without limits
// (EXPLAIN ANALYZE wants peak counters either way). A non-nil pool override
// (per-tenant budget) always yields a tracking allocator drawing from that
// pool instead of the framework pool.
func (f *Framework) newAllocator(pool *memory.Pool, forceTracking bool) *memory.Allocator {
	if pool == nil {
		if !f.memoryGoverned() && !forceTracking {
			return nil
		}
		pool = f.MemoryPool()
	}
	return memory.NewAllocator(pool, f.QueryMemoryLimit, !f.DisableSpill)
}

// RegisterAdapter plugs an adapter into the framework.
func (f *Framework) RegisterAdapter(a Adapter) {
	f.Catalog.AddSchema(a.AdapterSchema())
	f.PhysicalRules = append(f.PhysicalRules, a.Rules()...)
	f.Converters = append(f.Converters, a.Converters()...)
	if ma, ok := a.(MetaAdapter); ok {
		f.Providers = append(f.Providers, ma.MetaProviders()...)
	}
	f.InvalidatePlans()
}

// PlanCache returns the framework's prepared-plan cache, creating it on
// first use.
func (f *Framework) PlanCache() *PlanCache {
	f.planCacheMu.Lock()
	defer f.planCacheMu.Unlock()
	if f.planCache == nil {
		f.planCache = NewPlanCache(f.PlanCacheSize)
	}
	return f.planCache
}

// planCacheIfEnabled returns the cache, or nil when caching is disabled.
func (f *Framework) planCacheIfEnabled() *PlanCache {
	if f.DisablePlanCache {
		return nil
	}
	return f.PlanCache()
}

// InvalidatePlans flushes the prepared-plan cache and the cardinality-
// feedback store together. Called on every statement that changes what plans
// mean — DDL, ANALYZE, INSERT, adapter or table registration — and available
// to embedders that mutate the catalog directly. The two invalidate through
// the one funnel deliberately: corrections harvested against superseded
// statistics are as stale as the plans optimized with them.
func (f *Framework) InvalidatePlans() {
	f.planCacheMu.Lock()
	c := f.planCache
	f.planCacheMu.Unlock()
	if c != nil {
		c.Invalidate()
	}
	f.fbMu.Lock()
	fb := f.fbStore
	f.fbMu.Unlock()
	if fb != nil {
		fb.Invalidate()
	}
}

// NewMetaQuery builds a metadata session with all registered providers. The
// cardinality-feedback store's corrections take precedence over every other
// provider: an observed row count beats any estimate.
func (f *Framework) NewMetaQuery() *meta.Query {
	q := meta.NewQuery(f.Providers...)
	q.CacheEnabled = f.MetadataCache
	if fb := f.feedbackIfEnabled(); fb != nil {
		q.Prepend(fb.MetaProvider())
	}
	return q
}

// ParseAndConvert runs parser + validator + sql2rel, returning the logical
// plan of a query statement.
func (f *Framework) ParseAndConvert(sql string) (rel.Node, error) {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return sql2rel.New(f.Catalog).Convert(stmt)
}

// Optimize runs the two-phase optimization program over a logical plan:
// logical rewrites to fix point (Hep), then physical implementation with
// the selected engine and the materialized-view rewriting rules (§6).
func (f *Framework) Optimize(logical rel.Node) (rel.Node, error) {
	mq := f.NewMetaQuery()

	node := logical
	if !f.DisableLogicalPhase {
		node = f.logicalOptimize(node, mq)
		mq.InvalidateCache()
		node = f.reorderJoins(node, mq)
	}

	physRules := append([]plan.Rule(nil), f.PhysicalRules...)
	physRules = append(physRules, f.substitutionRules(mq)...)

	if f.Planner == HeuristicHep {
		hep := plan.NewHepPlanner(physRules...)
		hep.Meta = mq
		out := hep.Optimize(node)
		return out, nil
	}

	vp := plan.NewVolcanoPlanner(physRules...)
	vp.Meta = mq
	vp.Mode = f.FixPoint
	if f.Delta > 0 {
		vp.Delta = f.Delta
	}
	for _, c := range f.Converters {
		vp.AddConverter(c.From, c.To, c.Factory)
	}
	f.LastPlanner = vp
	return vp.Optimize(node, trait.Enumerable)
}

// logicalOptimize runs the logical rewrite phase to fix point.
func (f *Framework) logicalOptimize(node rel.Node, mq *meta.Query) rel.Node {
	hep := plan.NewHepPlanner(f.LogicalRules...)
	hep.Meta = mq
	return hep.Optimize(node)
}

// substitutionRules builds the materialized-view rules for one planning
// session. Registered definition plans are stored in their logically
// optimized (statistics-independent) form and re-normalized through the
// join-order enumeration here, with the session's metadata: statistics can
// change between sessions (ANALYZE, inserts) and unification is digest-
// exact, so the view side must be canonicalized with the same estimates as
// the incoming query or join-containing views would silently stop matching.
func (f *Framework) substitutionRules(mq *meta.Query) []plan.Rule {
	views := f.Views.Views()
	lattices := f.Views.Lattices()
	if len(views) == 0 && len(lattices) == 0 {
		return nil
	}
	session := mv.NewRegistry()
	for _, v := range views {
		session.Register(&mv.MaterializedView{
			Name:  v.Name,
			Plan:  f.reorderJoins(v.Plan, mq),
			Table: v.Table,
		})
	}
	for _, l := range lattices {
		session.RegisterLattice(l)
	}
	return session.SubstitutionRules()
}

// reorderJoins runs the two-phase cost-based join-order enumeration: inner
// join trees collapse into flat MultiJoins, which LoptOptimizeJoinRule then
// expands into binary join trees ordered by the cardinality estimates of the
// metadata providers (histogram/NDV-driven once tables are ANALYZEd). The
// phases are separate Hep passes because the expansion's output joins must
// not re-trigger the collapse.
func (f *Framework) reorderJoins(node rel.Node, mq *meta.Query) rel.Node {
	if f.DisableJoinReorder {
		return node
	}
	collapse, order := rules.JoinOrderRules()
	hepCollapse := plan.NewHepPlanner(collapse...)
	hepCollapse.Meta = mq
	node = hepCollapse.Optimize(node)
	hepOrder := plan.NewHepPlanner(order...)
	hepOrder.Meta = mq
	node = hepOrder.Optimize(node)
	mq.InvalidateCache()
	return node
}

// Result is the outcome of executing a statement.
type Result struct {
	Columns []string
	Rows    [][]any
	// Plan is set for EXPLAIN.
	Plan string
}

// ExecOptions customizes one statement execution beyond the SQL text.
type ExecOptions struct {
	// Params bind the statement's "?" placeholders positionally.
	Params []any
	// Pool, when non-nil, replaces the framework pool as the budget the
	// query's allocator draws from — the serving tier passes a per-tenant
	// child pool here so one tenant cannot starve another. A query with a
	// Pool override always runs governed (tracked, spill-capable).
	Pool *memory.Pool
	// Interrupt, when non-nil, cancels the execution cooperatively: setting
	// it makes the engine's drain loops and streaming operators fail with
	// exec.ErrCanceled. The serving tier arms it per statement.
	Interrupt *atomic.Bool
}

// Execute parses, plans and runs a SQL statement (including DDL). Query and
// DML statements run traced: the observability engine assigns an ID, times
// each stage, builds a per-operator span tree and retains the finished
// trace (see Obs).
func (f *Framework) Execute(sql string, params ...any) (*Result, error) {
	return f.ExecuteOpts(sql, ExecOptions{Params: params})
}

// ExecuteOpts is Execute with per-execution options (parameters, a tenant
// memory pool). Repeated statements hit the prepared-plan cache and skip
// parse+optimize entirely.
func (f *Framework) ExecuteOpts(sql string, opts ExecOptions) (*Result, error) {
	if cache := f.planCacheIfEnabled(); cache != nil {
		if ent, ok := cache.Get(sql); ok {
			return f.executeCachedPlan(sql, ent, opts)
		}
	}
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *parser.ExplainStmt:
		return f.explain(s, sql)
	case *parser.CreateTableStmt:
		f.InvalidatePlans()
		return f.createTable(s)
	case *parser.CreateViewStmt:
		f.InvalidatePlans()
		return f.createView(s, sql)
	case *parser.AnalyzeStmt:
		// New statistics change join orders: cached plans are stale.
		f.InvalidatePlans()
		return f.analyzeTable(s)
	case *parser.InsertStmt:
		// INSERT invalidates the target table's column statistics, so
		// cached plans optimized against them are stale too.
		f.InvalidatePlans()
	}
	return f.executeQuery(sql, stmt, opts)
}

// cacheableStmt reports whether a statement's optimized plan may be reused
// by later byte-identical statements: pure queries only — DML re-plans (and
// flushes) every time, DDL never reaches the query path.
func cacheableStmt(stmt parser.Statement) bool {
	switch stmt.(type) {
	case *parser.SelectStmt, *parser.SetOpStmt, *parser.ValuesStmt:
		return true
	}
	return false
}

// executeQuery runs a converted query/DML statement under tracing and, on
// success, caches the optimized plan for reuse by identical statements.
func (f *Framework) executeQuery(sql string, stmt parser.Statement, opts ExecOptions) (*Result, error) {
	eng := f.Obs()
	tr := eng.Begin(sql)
	res, physical, est, err := f.runTraced(tr, stmt, opts)
	if err != nil {
		tr.Error = err.Error()
	}
	snap := eng.End(tr)
	if err == nil && physical != nil && cacheableStmt(stmt) {
		if cache := f.planCacheIfEnabled(); cache != nil {
			cache.Put(sql, physical, res.Columns, est)
		}
	}
	// Harvest after the Put: a replan request evicts the entry just cached,
	// so the next execution plans against the corrections recorded here.
	f.harvestFeedback(snap, est)
	return res, err
}

// executeCachedPlan runs a plan-cache hit: no parse, no optimize — straight
// to execution of the cached physical plan under a fresh context.
func (f *Framework) executeCachedPlan(sql string, ent *planEntry, opts ExecOptions) (*Result, error) {
	eng := f.Obs()
	tr := eng.Begin(sql)
	tr.Cached = true
	ctx := f.newExecContext(opts)
	defer ctx.Alloc.Close()
	ctx.Evaluator.Params = opts.Params
	prepared := f.attachTrace(ctx, tr, ent.plan, ent.est)
	t := time.Now()
	rows, err := exec.Execute(ctx, prepared)
	tr.ExecNs = int64(time.Since(t))
	f.mergeMemStats(tr, ctx)
	if err != nil {
		tr.Error = err.Error()
		eng.End(tr)
		return nil, err
	}
	tr.Rows = int64(len(rows))
	f.harvestFeedback(eng.End(tr), ent.est)
	return &Result{Columns: ent.columns, Rows: rows}, nil
}

func (f *Framework) runTraced(tr *obs.QueryTrace, stmt parser.Statement, opts ExecOptions) (*Result, rel.Node, *feedback.PlanEstimates, error) {
	t0 := time.Now()
	logical, err := sql2rel.New(f.Catalog).Convert(stmt)
	if err != nil {
		return nil, nil, nil, err
	}
	tr.PlanNs = int64(time.Since(t0))
	t1 := time.Now()
	physical, err := f.Optimize(logical)
	if err != nil {
		return nil, nil, nil, err
	}
	// The adaptive post-pass and the estimate table share one metadata
	// session (feedback corrections included), so the estimates stamped on
	// the spans are exactly what the plan was judged by.
	mq := f.NewMetaQuery()
	physical = f.applyAdaptiveTactics(physical, mq)
	est := f.planEstimates(tr.Fingerprint, physical, mq)
	tr.OptimizeNs = int64(time.Since(t1))
	ctx := f.newExecContext(opts)
	// The allocator cleanup is the spill-file guarantee: whatever path
	// execution takes out of this function — rows, error, worker teardown —
	// the query's grants return to the pool and its spill directory is
	// removed.
	defer ctx.Alloc.Close()
	ctx.Evaluator.Params = opts.Params
	prepared := f.attachTrace(ctx, tr, physical, est)
	t2 := time.Now()
	rows, err := exec.Execute(ctx, prepared)
	tr.ExecNs = int64(time.Since(t2))
	f.mergeMemStats(tr, ctx)
	if err != nil {
		return nil, nil, nil, err
	}
	tr.Rows = int64(len(rows))
	return &Result{Columns: physical.RowType().FieldNames(), Rows: rows}, physical, est, nil
}

// EffectiveParallelism resolves the configured worker count.
func (f *Framework) EffectiveParallelism() int {
	if f.Parallelism > 0 {
		return f.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// WorkerPool returns the framework's shared worker pool, creating it on
// first use. All parallel queries of this framework schedule their pipeline
// drivers on it.
func (f *Framework) WorkerPool() *parallel.Pool {
	f.poolMu.Lock()
	defer f.poolMu.Unlock()
	if f.pool == nil {
		f.pool = parallel.NewPool(f.EffectiveParallelism())
	}
	return f.pool
}

// prepareForExecution applies the morsel-driven parallel rewrite when the
// configuration calls for it (batch mode, parallelism > 1). Under memory
// governance joins stay on the serial spill-capable (Grace) hash join —
// one partition in memory at a time — while the scans, sorts and partial
// aggregations below them still fan out across workers, each charging the
// shared query budget.
func (f *Framework) prepareForExecution(physical rel.Node) rel.Node {
	if f.RowMode {
		return physical
	}
	if p := f.EffectiveParallelism(); p > 1 {
		return parallel.ParallelizeWith(physical, f.WorkerPool(), p,
			parallel.Options{SerialJoins: f.memoryGoverned()})
	}
	return physical
}

// ExecutePhysical runs an already-optimized physical plan under the
// framework's execution configuration (batch mode, batch size, parallelism,
// memory budget).
func (f *Framework) ExecutePhysical(physical rel.Node) ([][]any, error) {
	ctx := f.newExecContext(ExecOptions{})
	defer ctx.Alloc.Close()
	return exec.Execute(ctx, f.prepareForExecution(physical))
}

func (f *Framework) explain(s *parser.ExplainStmt, sql string) (*Result, error) {
	logical, err := sql2rel.New(f.Catalog).Convert(s.Target)
	if err != nil {
		return nil, err
	}
	node := logical
	// One metadata session serves the adaptive pass and the annotations, so
	// EXPLAIN shows the estimates (feedback corrections included) the plan
	// was actually judged by.
	mq := f.NewMetaQuery()
	if !s.Logical {
		physical, err := f.Optimize(logical)
		if err != nil {
			return nil, err
		}
		node = f.applyAdaptiveTactics(physical, mq)
	}
	// Annotate each operator with the metadata providers' estimates so
	// EXPLAIN shows what the cost-based decisions were based on.
	text := rel.ExplainAnnotated(node, func(n rel.Node) string {
		return fmt.Sprintf("rows=%.4g, cost=%.4g", mq.RowCount(n), mq.CumulativeCost(n).Scalar())
	})
	if s.Analyze {
		statsText, err := f.explainAnalyze(node, sql, mq)
		if err != nil {
			return nil, err
		}
		text += statsText
	}
	var rows [][]any
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		rows = append(rows, []any{line})
	}
	return &Result{Columns: []string{"PLAN"}, Rows: rows, Plan: text}, nil
}

// explainAnalyze executes the explained plan under tracing (and a tracking
// allocator) and renders the run statistics from the finished trace
// snapshot — the same span tree /debug/queries serves as JSON, so the text
// and the JSON can never disagree.
func (f *Framework) explainAnalyze(physical rel.Node, sql string, mq *meta.Query) (string, error) {
	eng := f.Obs()
	tr := eng.Begin(sql)
	est := f.planEstimates(tr.Fingerprint, physical, mq)
	ctx := f.newExecContext(ExecOptions{})
	if ctx.Alloc == nil {
		// No budget configured: track anyway so peaks are still reported.
		ctx.Alloc = f.newAllocator(nil, true)
	}
	defer ctx.Alloc.Close()
	prepared := f.attachTrace(ctx, tr, physical, est)
	start := time.Now()
	rows, err := exec.Execute(ctx, prepared)
	tr.ExecNs = int64(time.Since(start))
	f.mergeMemStats(tr, ctx)
	if err != nil {
		tr.Error = err.Error()
		eng.End(tr)
		return "", err
	}
	tr.Rows = int64(len(rows))
	snap := eng.End(tr)
	f.harvestFeedback(snap, est)

	var b strings.Builder
	fmt.Fprintf(&b, "--- run stats ---\n")
	fmt.Fprintf(&b, "rows: %d, elapsed: %s\n", snap.Rows,
		time.Duration(snap.TotalNs).Round(time.Microsecond))
	budget := "unlimited"
	if lim := f.MemoryLimit; lim > 0 {
		budget = memory.FormatBytes(lim)
	}
	if ql := f.QueryMemoryLimit; ql > 0 {
		budget += ", per-query " + memory.FormatBytes(ql)
	}
	fmt.Fprintf(&b, "memory: budget=%s, peak=%s, spilled=%s\n",
		budget, memory.FormatBytes(snap.PeakBytes), memory.FormatBytes(snap.Spilled))
	b.WriteString(obs.RenderSpans(snap.Spans))
	return b.String(), nil
}

func (f *Framework) createTable(s *parser.CreateTableStmt) (*Result, error) {
	fields := make([]types.Field, len(s.Cols))
	for i, c := range s.Cols {
		t, err := validateType(c.Type)
		if err != nil {
			return nil, err
		}
		fields[i] = types.Field{Name: c.Name, Type: t.WithNullable(true)}
	}
	name := s.Name[len(s.Name)-1]
	target := f.Catalog
	if len(s.Name) > 1 {
		sub, ok := f.Catalog.SubSchema(s.Name[0])
		if !ok {
			return nil, fmt.Errorf("core: schema %q not found", s.Name[0])
		}
		base, ok := sub.(*schema.BaseSchema)
		if !ok {
			return nil, fmt.Errorf("core: schema %q does not accept DDL", s.Name[0])
		}
		target = base
	}
	target.AddTable(schema.NewMemTable(name, types.Row(fields...), nil))
	return &Result{Columns: []string{"RESULT"}, Rows: [][]any{{"table created"}}}, nil
}

func (f *Framework) createView(s *parser.CreateViewStmt, originalSQL string) (*Result, error) {
	name := s.Name[len(s.Name)-1]
	logical, err := sql2rel.New(f.Catalog).Convert(s.Query)
	if err != nil {
		return nil, err
	}
	if !s.Materialized {
		f.Catalog.AddTable(&schema.ViewTable{
			ViewName: name,
			SQL:      s.SQL,
			Type:     logical.RowType(),
		})
		return &Result{Columns: []string{"RESULT"}, Rows: [][]any{{"view created"}}}, nil
	}
	// Materialized view: execute the definition now, store the rows, and
	// register the (definition plan, storage table) pair with the rewriting
	// registry (§6 "materialized views").
	physical, err := f.Optimize(logical)
	if err != nil {
		return nil, err
	}
	mvCtx := f.newExecContext(ExecOptions{})
	defer mvCtx.Alloc.Close()
	rows, err := exec.Execute(mvCtx, f.prepareForExecution(physical))
	if err != nil {
		return nil, err
	}
	table := schema.NewMemTable(name, logical.RowType(), rows)
	f.Catalog.AddTable(table)
	// Register the definition plan in its logically optimized form — the
	// statistics-independent canonicalization. The join-order enumeration,
	// whose outcome depends on current statistics, is applied per planning
	// session (substitutionRules) so the view side always matches queries
	// normalized with the same estimates.
	f.Views.Register(&mv.MaterializedView{
		Name:  name,
		Plan:  f.logicalOptimize(logical, f.NewMetaQuery()),
		Table: table,
	})
	return &Result{Columns: []string{"RESULT"}, Rows: [][]any{{fmt.Sprintf("materialized view created (%d rows)", len(rows))}}}, nil
}

func validateType(ts parser.TypeSpec) (*types.Type, error) {
	return sql2rel.ConvertTypeSpec(ts)
}

// newExecContext builds an execution context honoring the framework's
// execution-mode configuration and the per-execution options (tenant pool).
// Callers own the allocator: defer ctx.Alloc.Close() (nil-safe) so grants
// and spill files are reclaimed on every exit path.
func (f *Framework) newExecContext(opts ExecOptions) *exec.Context {
	ctx := exec.NewContext()
	ctx.BatchMode = !f.RowMode
	ctx.BatchSize = f.BatchSize
	ctx.Alloc = f.newAllocator(opts.Pool, false)
	ctx.WindowRecompute = f.WindowRecompute
	ctx.Interrupt = opts.Interrupt
	return ctx
}
