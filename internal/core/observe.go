package core

// Observability wiring: the Framework owns one obs.Engine (metrics registry
// + trace retention + slow-query log) and registers function-backed
// instruments over the subsystems that keep their own atomic counters (the
// memory pool and the worker pool), so the hot paths never touch the
// registry.

import (
	"io"
	"time"

	"calcite/internal/exec"
	"calcite/internal/feedback"
	"calcite/internal/obs"
	"calcite/internal/rel"
)

// Obs returns the framework's observability engine, creating it on first
// use with the subsystem metrics registered and the configured slow-query
// threshold applied.
func (f *Framework) Obs() *obs.Engine {
	f.obsMu.Lock()
	defer f.obsMu.Unlock()
	if f.obsEng == nil {
		f.obsEng = obs.NewEngine()
		f.obsEng.SetSlowQuery(f.SlowQueryThreshold, f.SlowQueryLog)
		f.registerSubsystemMetrics(f.obsEng.Registry)
	}
	return f.obsEng
}

// SetSlowQuery updates the slow-query threshold and log sink, on the live
// engine if one exists.
func (f *Framework) SetSlowQuery(threshold time.Duration, w io.Writer) {
	f.SlowQueryThreshold = threshold
	f.SlowQueryLog = w
	f.obsMu.Lock()
	eng := f.obsEng
	f.obsMu.Unlock()
	eng.SetSlowQuery(threshold, w)
}

// registerSubsystemMetrics exposes the memory governor and the worker pool
// through function-backed instruments sampled at scrape time.
func (f *Framework) registerSubsystemMetrics(r *obs.Registry) {
	mp := f.MemoryPool()
	r.GaugeFunc("calcite_memory_pool_limit_bytes",
		"Configured framework-wide memory budget (0 = unlimited).",
		func() float64 { return float64(mp.Limit()) })
	r.GaugeFunc("calcite_memory_pool_used_bytes",
		"Bytes currently reserved by running queries.",
		func() float64 { return float64(mp.Used()) })
	r.CounterFunc("calcite_memory_granted_bytes_total",
		"Bytes granted by the memory pool.",
		func() int64 { return mp.Counters().GrantedBytes })
	r.CounterFunc("calcite_memory_denied_bytes_total",
		"Bytes refused because they would exceed the pool limit.",
		func() int64 { return mp.Counters().DeniedBytes })
	r.CounterFunc("calcite_memory_denials_total",
		"Grant requests refused by the memory pool.",
		func() int64 { return mp.Counters().Denials })
	r.CounterFunc("calcite_memory_released_bytes_total",
		"Bytes returned to the memory pool.",
		func() int64 { return mp.Counters().ReleasedBytes })
	r.CounterFunc("calcite_spill_events_total",
		"Operator decisions to overflow state to disk.",
		func() int64 { return mp.Counters().SpillEvents })
	r.CounterFunc("calcite_spill_bytes_total",
		"Bytes written to spill files.",
		func() int64 { return mp.Counters().SpillBytes })
	r.CounterFunc("calcite_spill_files_total",
		"Spill files created.",
		func() int64 { return mp.Counters().SpillFiles })

	pc := f.PlanCache()
	r.GaugeFunc("calcite_plan_cache_entries",
		"Optimized plans currently cached.",
		func() float64 { return float64(pc.Len()) })
	r.CounterFunc("calcite_plan_cache_hits_total",
		"Statements that reused a cached plan (skipped parse+optimize).",
		func() int64 { return pc.Counters().Hits })
	r.CounterFunc("calcite_plan_cache_misses_total",
		"Statements that planned from scratch.",
		func() int64 { return pc.Counters().Misses })
	r.CounterFunc("calcite_plan_cache_evictions_total",
		"Cached plans evicted by the LRU size cap.",
		func() int64 { return pc.Counters().Evictions })
	r.CounterFunc("calcite_plan_cache_invalidations_total",
		"Whole-cache flushes (DDL, ANALYZE, INSERT, adapter registration).",
		func() int64 { return pc.Counters().Invalidations })
	r.CounterFunc("calcite_plan_cache_feedback_evictions_total",
		"Targeted evictions requested by the cardinality-feedback loop.",
		func() int64 { return pc.Counters().FeedbackEvictions })

	fb := f.Feedback()
	fb.SetObserver(r.Histogram("calcite_plan_qerror",
		"Per-operator estimation error (q-error) of harvested executions.",
		[]float64{1, 1.5, 2, 4, 8, 16, 32, 64, 128, 256}).Observe)
	r.GaugeFunc("calcite_plan_qerror_max",
		"Worst per-operator q-error observed since the last invalidation.",
		fb.WorstQError)
	r.GaugeFunc("calcite_feedback_fingerprints",
		"Statement fingerprints tracked by the feedback store.",
		func() float64 { fps, _ := fb.Size(); return float64(fps) })
	r.GaugeFunc("calcite_feedback_corrections",
		"Operator shapes with an active cardinality correction.",
		func() float64 { _, ops := fb.Size(); return float64(ops) })
	r.CounterFunc("calcite_feedback_harvests_total",
		"Finished traces folded into the feedback store.",
		func() int64 { return fb.Counters().Harvests })
	r.CounterFunc("calcite_feedback_samples_total",
		"Per-operator actual-vs-estimate observations harvested.",
		func() int64 { return fb.Counters().Samples })
	r.CounterFunc("calcite_feedback_corrections_total",
		"Corrected row counts served to planning sessions.",
		func() int64 { return fb.Counters().Corrections })
	r.CounterFunc("calcite_feedback_replans_total",
		"Re-planning requests (estimation error past the replan threshold).",
		func() int64 { return fb.Counters().Replans })
	r.CounterFunc("calcite_feedback_build_overshoots_total",
		"Hash-join build sides that overshot their estimate past the swap threshold.",
		func() int64 { return fb.Counters().BuildOvershoots })
	r.CounterFunc("calcite_feedback_swaps_total",
		"Build/probe swaps applied by the adaptive re-planner.",
		func() int64 { return fb.Counters().SwapsApplied })
	r.CounterFunc("calcite_feedback_invalidations_total",
		"Feedback-store flushes (shared with the plan cache's DDL/ANALYZE funnel).",
		func() int64 { return fb.Counters().Invalidations })

	wp := f.WorkerPool()
	r.GaugeFunc("calcite_workers_busy",
		"Worker goroutines currently executing a task.",
		func() float64 { return float64(wp.Busy()) })
	r.GaugeFunc("calcite_workers_parallelism",
		"Configured degree of parallelism.",
		func() float64 { return float64(wp.Parallelism()) })
	r.CounterFunc("calcite_worker_tasks_total",
		"Tasks completed by pool workers.",
		func() int64 { return wp.TasksDone() })
	r.CounterFunc("calcite_worker_spawns_total",
		"Worker goroutines started (task arrived with no idle resident).",
		func() int64 { s, _ := wp.Stats(); return s })
	r.CounterFunc("calcite_worker_handoffs_total",
		"Tasks handed to an already-resident idle worker.",
		func() int64 { _, h := wp.Stats(); return h })
	r.CounterFunc("calcite_morsels_dispatched_total",
		"Scan morsels claimed by workers.",
		func() int64 { return wp.MorselsDispatched() })

	// Streaming: the continuous-query operators keep package-level atomics
	// (hot-path friendly); the registry samples them at scrape time.
	r.CounterFunc("calcite_stream_rows_total",
		"Events ingested by streaming aggregation operators.",
		exec.StreamRowsIn)
	r.CounterFunc("calcite_stream_windows_emitted_total",
		"Windows emitted by streaming aggregation operators.",
		exec.StreamWindowsEmitted)
	r.CounterFunc("calcite_stream_late_events_total",
		"Events dropped because they arrived behind the watermark.",
		exec.StreamLateDropped)
	r.GaugeFunc("calcite_stream_watermark_lag_ms",
		"Gap between the newest rowtime seen and the current watermark.",
		func() float64 { return float64(exec.StreamWatermarkLagMs()) })
	r.GaugeFunc("calcite_stream_state_bytes",
		"Bytes of standing window state held by live streaming queries.",
		func() float64 { return float64(exec.StreamStateBytes()) })
	exec.SetStreamEmitObserver(r.Histogram("calcite_stream_emit_seconds",
		"Latency of watermark-driven window emission rounds.",
		[]float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}).Observe)
}

// attachTrace prepares physical for execution and attaches the trace's span
// tree to the execution context, one span per node of the prepared
// (post-parallel-rewrite) plan. When the plan carries an estimate table,
// spans are stamped with their path ids and estimated row counts and the
// hash-join build-overshoot hook is armed, feeding the adaptive re-planner.
func (f *Framework) attachTrace(ctx *exec.Context, tr *obs.QueryTrace, physical rel.Node, est *feedback.PlanEstimates) rel.Node {
	prepared := f.prepareForExecution(physical)
	if tr != nil {
		if f.RowMode {
			tr.Parallelism = 1
		} else {
			tr.Parallelism = f.EffectiveParallelism()
		}
		ctx.Trace = tr
		ctx.Spans = exec.BuildSpans(tr, prepared, est.PathRows())
		if fb := f.feedbackIfEnabled(); fb != nil && est != nil {
			fp := tr.Fingerprint
			ctx.BuildOvershoot = func(join rel.Node, estRows, actualRows float64) {
				fb.RecordBuildOvershoot(fp, feedback.NodeKey(join), estRows, actualRows)
			}
		}
	}
	return prepared
}

// mergeMemStats folds the query allocator's counters into the trace: the
// query-level peak/spilled totals and the per-operator reservation stats,
// matched to spans by the governor's operator names.
func (f *Framework) mergeMemStats(tr *obs.QueryTrace, ctx *exec.Context) {
	if tr == nil || ctx.Alloc == nil {
		return
	}
	tr.PeakBytes = ctx.Alloc.Peak()
	tr.SpilledBytes = ctx.Alloc.Spilled()
	for _, op := range ctx.Alloc.Snapshot() {
		tr.AttachMemStats(op.Name, op.PeakBytes, op.SpilledBytes, op.SpillFiles, op.SpillEvents)
	}
}
