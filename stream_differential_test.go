package calcite_test

// Differential suite for continuous queries (§7.2): the incremental
// streaming engine (StreamAggregate) must produce exactly the windows of
// the row-mode batch oracle (internal/stream), for every window kind ×
// grouping × arrival order × parallelism — and under a memory budget small
// enough to force window state to spill.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"calcite"
	"calcite/internal/adapter/streamtab"
	"calcite/internal/rex"
	"calcite/internal/stream"
	"calcite/internal/types"
)

// genStreamEvents builds a deterministic in-order event log
// [rowtime, k, v] with nKeys distinct keys and ~400ms mean spacing.
func genStreamEvents(n int, nKeys int64) [][]any {
	rows := make([][]any, 0, n)
	rng := uint64(0x9E3779B97F4A7C15)
	next := func(mod int64) int64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int64(rng>>33) % mod
	}
	ts := int64(0)
	for i := 0; i < n; i++ {
		ts += next(400)
		rows = append(rows, []any{ts, next(nKeys), next(1000)})
	}
	return rows
}

// streamFixture loads rows into a stream table (replaying with the given
// bounded event-time skew when skewMs > 0) behind a fresh connection.
func streamFixture(t *testing.T, rows [][]any, skewMs int64) (*calcite.Connection, *streamtab.Table) {
	t.Helper()
	tb := streamtab.NewTable("events", types.Row(
		types.Field{Name: "rowtime", Type: types.Timestamp},
		types.Field{Name: "k", Type: types.BigInt},
		types.Field{Name: "v", Type: types.BigInt},
	), 0)
	for _, r := range rows {
		if err := tb.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if skewMs > 0 {
		tb.SetReplaySkew(42, skewMs)
	}
	conn := calcite.Open()
	sa := streamtab.New("s")
	sa.AddTable(tb)
	conn.RegisterAdapter(sa)
	return conn, tb
}

// oracleWindows recomputes the expected windows with the row-mode oracle.
func oracleWindows(t *testing.T, tb *streamtab.Table, kind string, a, b int64, keyed bool) [][]any {
	t.Helper()
	cur, err := tb.StreamScan()
	if err != nil {
		t.Fatal(err)
	}
	events, err := stream.EventsFromCursor(cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	var keyCols []int
	if keyed {
		keyCols = []int{1}
	}
	calls := []rex.AggCall{
		rex.NewAggCall(rex.AggCount, nil, false, "c"),
		rex.NewAggCall(rex.AggSum, []int{2}, false, "s"),
	}
	var wins []stream.Window
	switch kind {
	case "TUMBLE":
		wins, err = stream.Tumble(events, a, keyCols, calls)
	case "HOP":
		wins, err = stream.Hop(events, a, b, keyCols, calls)
	case "SESSION":
		wins, err = stream.Session(events, a, keyCols, calls)
	}
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]any, 0, len(wins))
	for _, w := range wins {
		row := []any{w.Start, w.End}
		row = append(row, w.Key...)
		row = append(row, w.Values...)
		rows = append(rows, row)
	}
	return rows
}

// canonRows renders rows to a sorted string multiset for order-insensitive
// comparison.
func canonRows(rows [][]any) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r...)
	}
	sort.Strings(out)
	return out
}

func diffRows(t *testing.T, label string, got, want [][]any) {
	t.Helper()
	g, w := canonRows(got), canonRows(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d windows, oracle has %d\n got: %v\nwant: %v", label, len(g), len(w), g, w)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: window %d differs\n got: %s\nwant: %s", label, i, g[i], w[i])
		}
	}
}

// streamDiffCases enumerates the SQL surface of each window kind. Lateness
// (the trailing interval) always covers the replay skew, so no event is
// dropped and the incremental result must equal the full recompute.
var streamDiffCases = []struct {
	kind string
	a, b int64 // TUMBLE: size; HOP: slide, size; SESSION: gap (ms)
	sql  map[bool]string
}{
	{
		kind: "TUMBLE", a: 1000,
		sql: map[bool]string{
			true: `SELECT STREAM TUMBLE_START(rowtime, INTERVAL '1' SECOND) AS ws,
				TUMBLE_END(rowtime, INTERVAL '1' SECOND) AS we, k, COUNT(*) AS c, SUM(v) AS s
				FROM s.events GROUP BY TUMBLE(rowtime, INTERVAL '1' SECOND, INTERVAL '2' SECOND), k`,
			false: `SELECT STREAM TUMBLE_START(rowtime, INTERVAL '1' SECOND) AS ws,
				TUMBLE_END(rowtime, INTERVAL '1' SECOND) AS we, COUNT(*) AS c, SUM(v) AS s
				FROM s.events GROUP BY TUMBLE(rowtime, INTERVAL '1' SECOND, INTERVAL '2' SECOND)`,
		},
	},
	{
		kind: "HOP", a: 1000, b: 3000,
		sql: map[bool]string{
			true: `SELECT STREAM HOP_START(rowtime, INTERVAL '1' SECOND, INTERVAL '3' SECOND) AS ws,
				HOP_END(rowtime, INTERVAL '1' SECOND, INTERVAL '3' SECOND) AS we, k, COUNT(*) AS c, SUM(v) AS s
				FROM s.events GROUP BY HOP(rowtime, INTERVAL '1' SECOND, INTERVAL '3' SECOND, INTERVAL '2' SECOND), k`,
			false: `SELECT STREAM HOP_START(rowtime, INTERVAL '1' SECOND, INTERVAL '3' SECOND) AS ws,
				HOP_END(rowtime, INTERVAL '1' SECOND, INTERVAL '3' SECOND) AS we, COUNT(*) AS c, SUM(v) AS s
				FROM s.events GROUP BY HOP(rowtime, INTERVAL '1' SECOND, INTERVAL '3' SECOND, INTERVAL '2' SECOND)`,
		},
	},
	{
		kind: "SESSION", a: 2000,
		sql: map[bool]string{
			true: `SELECT STREAM SESSION_START(rowtime, INTERVAL '2' SECOND) AS ws,
				SESSION_END(rowtime, INTERVAL '2' SECOND) AS we, k, COUNT(*) AS c, SUM(v) AS s
				FROM s.events GROUP BY SESSION(rowtime, INTERVAL '2' SECOND, INTERVAL '2' SECOND), k`,
			false: `SELECT STREAM SESSION_START(rowtime, INTERVAL '2' SECOND) AS ws,
				SESSION_END(rowtime, INTERVAL '2' SECOND) AS we, COUNT(*) AS c, SUM(v) AS s
				FROM s.events GROUP BY SESSION(rowtime, INTERVAL '2' SECOND, INTERVAL '2' SECOND)`,
		},
	},
}

// TestStreamDifferentialOracle: streaming incremental ≡ batch recompute for
// TUMBLE/HOP/SESSION × (global, keyed) × (in-order, bounded out-of-order
// arrival) × parallelism 1 and 4.
func TestStreamDifferentialOracle(t *testing.T) {
	rows := genStreamEvents(1200, 3)
	for _, skew := range []int64{0, 2000} {
		conn, tb := streamFixture(t, rows, skew)
		for _, par := range []int{1, 4} {
			conn.SetParallelism(par)
			for _, tc := range streamDiffCases {
				for _, keyed := range []bool{false, true} {
					label := fmt.Sprintf("%s/keyed=%v/skew=%d/par=%d", tc.kind, keyed, skew, par)
					res, err := conn.Query(tc.sql[keyed])
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					want := oracleWindows(t, tb, tc.kind, tc.a, tc.b, keyed)
					diffRows(t, label, res.Rows, want)
					if tc.kind != "SESSION" {
						assertEmissionOrder(t, label, res.Rows, keyed)
					}
				}
			}
		}
	}
}

// assertEmissionOrder checks the deterministic merged emission order of
// tumbling/hopping windows: (window_start, key…, window_end) ascending.
func assertEmissionOrder(t *testing.T, label string, rows [][]any, keyed bool) {
	t.Helper()
	key := func(r []any) []any {
		if keyed {
			return []any{r[0], r[2], r[1]}
		}
		return []any{r[0], r[1]}
	}
	for i := 1; i < len(rows); i++ {
		a, b := key(rows[i-1]), key(rows[i])
		for j := range a {
			if c := types.Compare(a[j], b[j]); c < 0 {
				break
			} else if c > 0 {
				t.Fatalf("%s: emission order violated at row %d: %v after %v", label, i, rows[i], rows[i-1])
			}
		}
	}
}

// TestStreamWindowValidation: the windowed-stream surface rejects malformed
// window specs with targeted errors (satellite of the grammar tests in
// internal/parser).
func TestStreamWindowValidation(t *testing.T) {
	conn, _ := streamFixture(t, genStreamEvents(10, 2), 0)
	cases := []struct{ sql, wantErr string }{
		{`SELECT STREAM COUNT(*) FROM s.events GROUP BY TUMBLE(rowtime)`,
			"TUMBLE requires (rowtime, size [, lateness])"},
		{`SELECT STREAM COUNT(*) FROM s.events GROUP BY HOP(rowtime, INTERVAL '1' SECOND)`,
			"HOP requires (rowtime, slide, size [, lateness])"},
		{`SELECT STREAM COUNT(*) FROM s.events GROUP BY SESSION(rowtime)`,
			"SESSION requires (rowtime, gap [, lateness])"},
		{`SELECT STREAM COUNT(*) FROM s.events GROUP BY TUMBLE(rowtime, INTERVAL '0' SECOND)`,
			"TUMBLE size must be a positive interval"},
		{`SELECT STREAM COUNT(*) FROM s.events GROUP BY HOP(rowtime, INTERVAL '2' SECOND, INTERVAL '3' SECOND)`,
			"must be a multiple of its slide"},
		{`SELECT STREAM COUNT(*) FROM s.events GROUP BY SESSION(rowtime, INTERVAL '1' SECOND, INTERVAL '-1' SECOND)`,
			"lateness must be non-negative"},
		{`SELECT STREAM COUNT(*) FROM s.events GROUP BY TUMBLE(v, INTERVAL '1' SECOND)`,
			"monotonic rowtime column"},
		{`SELECT STREAM COUNT(*) FROM s.events
			GROUP BY TUMBLE(rowtime, INTERVAL '1' SECOND), HOP(rowtime, INTERVAL '1' SECOND, INTERVAL '2' SECOND)`,
			"at most one group window"},
		{`SELECT STREAM TUMBLE_END(rowtime, INTERVAL '2' SECOND) FROM s.events GROUP BY TUMBLE(rowtime, INTERVAL '1' SECOND)`,
			"TUMBLE_END arguments do not match the GROUP BY TUMBLE"},
	}
	for _, tc := range cases {
		_, err := conn.Query(tc.sql)
		if err == nil {
			t.Errorf("%s: expected error %q, got none", tc.sql, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not contain %q", tc.sql, err, tc.wantErr)
		}
	}
}

// TestStreamDifferentialUnderMemoryLimit forces the standing window state
// past a quarter-working-set budget: the operator must spill (not error)
// and still match the oracle exactly.
func TestStreamDifferentialUnderMemoryLimit(t *testing.T) {
	rows := genStreamEvents(6000, 40)
	conn, tb := streamFixture(t, rows, 2000)
	conn.SetMemoryLimit(256 << 10)
	// A long lateness holds every pane live until the final drain, so the
	// standing state is the whole working set.
	sql := `SELECT STREAM HOP_START(rowtime, INTERVAL '1' SECOND, INTERVAL '8' SECOND) AS ws,
		HOP_END(rowtime, INTERVAL '1' SECOND, INTERVAL '8' SECOND) AS we, k, COUNT(*) AS c, SUM(v) AS s
		FROM s.events GROUP BY HOP(rowtime, INTERVAL '1' SECOND, INTERVAL '8' SECOND, INTERVAL '600' SECOND), k`
	res, err := conn.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	want := oracleWindows(t, tb, "HOP", 1000, 8000, true)
	diffRows(t, "HOP/spill", res.Rows, want)
	if n := conn.Framework.MemoryPool().Counters().SpillEvents; n == 0 {
		t.Error("expected streaming state to spill under the 256KB budget")
	}
}
