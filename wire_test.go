package calcite_test

// Wire-differential suite: every query of the differential corpus
// (modes_test.go) replayed through a live Avatica HTTP server must match
// the embedded Connection row for row — both as a single response and
// reassembled from paginated fetches at frame size 3. This pins the whole
// wire stack: JSON encoding, column-type restoration, prepared-statement
// params, cursor pagination and the plan-cache path the server rides.

import (
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"testing"

	"calcite"
	"calcite/internal/avatica"
)

func startDiffServer(t *testing.T) (*avatica.Server, *avatica.Client) {
	srv, client, _ := startDiffServerAddr(t)
	return srv, client
}

func startDiffServerAddr(t *testing.T) (*avatica.Server, *avatica.Client, string) {
	t.Helper()
	remote := diffConn()
	srv := avatica.NewServer(remote.Framework)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Stop() })
	return srv, avatica.NewClient(addr), addr
}

// compareWire checks columns and rows from the wire against the embedded
// result (ordered when the query orders, as multisets otherwise).
func compareWire(t *testing.T, sql string, want *calcite.Result, cols []string, rows [][]any) {
	t.Helper()
	if !reflect.DeepEqual(want.Columns, cols) {
		t.Errorf("%s\n  columns differ: embedded %v, wire %v", sql, want.Columns, cols)
		return
	}
	wantRows := renderRows(want.Rows)
	gotRows := renderRows(rows)
	if !strings.Contains(strings.ToUpper(sql), "ORDER BY") {
		sort.Strings(wantRows)
		sort.Strings(gotRows)
	}
	if !reflect.DeepEqual(wantRows, gotRows) {
		t.Errorf("%s\n  embedded: %v\n  wire:     %v", sql, wantRows, gotRows)
	}
}

func TestWireDifferential(t *testing.T) {
	local := diffConn()
	_, client := startDiffServer(t)
	for _, q := range diffQueries {
		want, lerr := local.Query(q.sql, q.params...)
		resp, werr := client.Query(q.sql, q.params...)
		if (lerr == nil) != (werr == nil) {
			t.Errorf("%s\n  embedded err=%v, wire err=%v", q.sql, lerr, werr)
			continue
		}
		if lerr != nil {
			continue // both fail: agreement
		}
		compareWire(t, q.sql, want, resp.Columns, resp.Rows)
	}
}

// TestWireDifferentialPaginated replays the corpus through prepared
// statements with fetch size 3, reassembling each result from its frames.
func TestWireDifferentialPaginated(t *testing.T) {
	local := diffConn()
	srv, client := startDiffServer(t)
	for _, q := range diffQueries {
		want, lerr := local.Query(q.sql, q.params...)
		if lerr != nil {
			continue // error agreement is TestWireDifferential's job
		}
		id, err := client.Prepare(q.sql)
		if err != nil {
			t.Fatalf("%s\n  prepare: %v", q.sql, err)
		}
		resp, err := client.Do(avatica.ExecuteRequest{
			StatementID: id, Params: q.params, FetchSize: 3,
		})
		if err != nil {
			t.Errorf("%s\n  paginated execute: %v", q.sql, err)
			continue
		}
		rows := resp.Rows
		if resp.More && len(resp.Rows) != 3 {
			t.Errorf("%s\n  first frame has %d rows, want 3", q.sql, len(resp.Rows))
		}
		for resp.More {
			nextOffset := resp.Offset + len(resp.Rows)
			resp, err = client.Fetch(id, 3)
			if err != nil {
				t.Fatalf("%s\n  fetch: %v", q.sql, err)
			}
			if resp.Offset != nextOffset {
				t.Errorf("%s\n  frame offset %d, want %d", q.sql, resp.Offset, nextOffset)
			}
			rows = append(rows, resp.Rows...)
		}
		compareWire(t, q.sql, want, resp.Columns, rows)
		if err := client.Close(id); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	if got := srv.StatementCount(); got != 0 {
		t.Fatalf("statements leaked after paginated replay: %d", got)
	}
	if got := srv.CursorBytes(); got != 0 {
		t.Fatalf("cursor bytes leaked after paginated replay: %d", got)
	}
}

// TestWirePlanQuality replays the corpus over the wire and checks the
// plan-quality observability surface: /metrics carries a populated q-error
// histogram (the tables are never ANALYZEd, so the default selectivities
// misestimate), and /debug/plans reports est/actual rows per operator.
func TestWirePlanQuality(t *testing.T) {
	_, client, addr := startDiffServerAddr(t)
	for _, q := range diffQueries {
		client.Query(q.sql, q.params...) // errors agree with embedded; not at issue here
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	var sawQErrorMass bool
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "calcite_plan_qerror_count ") &&
			!strings.HasSuffix(line, " 0") {
			sawQErrorMass = true
		}
	}
	if !sawQErrorMass {
		t.Fatalf("/metrics q-error histogram empty after corpus replay:\n%s", metrics)
	}
	if !strings.Contains(metrics, "calcite_plan_qerror_max ") {
		t.Fatalf("/metrics missing worst-q gauge:\n%s", metrics)
	}

	presp, err := http.Get("http://" + addr + "/debug/plans")
	if err != nil {
		t.Fatal(err)
	}
	pbody, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/plans status = %d", presp.StatusCode)
	}
	var plans avatica.DebugPlansResponse
	if err := json.Unmarshal(pbody, &plans); err != nil {
		t.Fatalf("/debug/plans bad JSON: %v", err)
	}
	if len(plans.Plans) == 0 {
		t.Fatal("/debug/plans empty after corpus replay")
	}
	var estimated bool
	for _, p := range plans.Plans {
		if p.Fingerprint == "" || p.SQL == "" {
			t.Fatalf("plan report lacks identity: %+v", p)
		}
		for _, op := range p.Ops {
			if op.EstRows > 0 && op.ActualRows > 0 && op.QError >= 1 {
				estimated = true
			}
		}
	}
	if !estimated {
		t.Fatal("/debug/plans carries no operator with est+actual rows")
	}
}
