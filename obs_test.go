package calcite_test

// Observability integration suite: the differential guarantee that EXPLAIN
// ANALYZE's operator-stats text and the /debug/queries JSON render from the
// same span tree, span assembly under serial and parallel execution, the
// slow-query log, and the engine-level metrics a query leaves behind.

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"

	"calcite"
	"calcite/internal/obs"
)

// obsConn builds a connection with a "shuf" table large enough that a sort
// under the given per-query budget must spill.
func obsConn(t *testing.T, rows int, queryMem int64) *calcite.Connection {
	t.Helper()
	conn := calcite.Open()
	data := make([][]any, rows)
	for i := range data {
		h := uint64(i) * 0x9e3779b97f4a7c15
		data[i] = []any{int64(i), int64(h % 97), float64(h%100000) / 100}
	}
	conn.AddTable("shuf", calcite.Columns{
		{Name: "id", Type: calcite.BigIntType},
		{Name: "grp", Type: calcite.BigIntType},
		{Name: "val", Type: calcite.DoubleType},
	}, data)
	if queryMem > 0 {
		conn.SetQueryMemoryLimit(queryMem)
	}
	return conn
}

// TestExplainAnalyzeMatchesDebugTrace is the differential acceptance test:
// the per-operator stats EXPLAIN ANALYZE prints must be the same numbers the
// trace ring serves as JSON — byte-identical after a JSON round trip, since
// both render from one TraceSnapshot.
func TestExplainAnalyzeMatchesDebugTrace(t *testing.T) {
	conn := obsConn(t, 4000, 16<<10)
	res, err := conn.Query("EXPLAIN ANALYZE SELECT id, val FROM shuf ORDER BY val")
	if err != nil {
		t.Fatal(err)
	}
	text := res.Plan
	if !strings.Contains(text, "--- run stats ---") {
		t.Fatalf("EXPLAIN ANALYZE missing run stats:\n%s", text)
	}
	if !strings.Contains(text, "spill-events=") {
		t.Fatalf("governed sort did not report spills:\n%s", text)
	}

	traces := conn.LastTraces(1)
	if len(traces) == 0 || traces[0].Spans == nil {
		t.Fatalf("no trace retained for the analyzed run")
	}
	snap := traces[0]
	if snap.Rows != 4000 {
		t.Fatalf("trace rows = %d, want 4000", snap.Rows)
	}

	// Round-trip the snapshot through JSON — the exact bytes /debug/queries
	// would serve — and re-render the span tree. The text section must embed
	// it verbatim: same rows, same batches, same spill counters.
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded obs.TraceSnapshot
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	rendered := obs.RenderSpans(decoded.Spans)
	if !strings.Contains(text, rendered) {
		t.Fatalf("EXPLAIN ANALYZE text does not embed the JSON span stats:\n--- text ---\n%s--- from JSON ---\n%s", text, rendered)
	}
	if decoded.Spilled == 0 || decoded.PeakBytes == 0 {
		t.Fatalf("trace memory counters empty: peak=%d spilled=%d", decoded.PeakBytes, decoded.Spilled)
	}
}

// findSpan walks a span tree for the first operator whose name contains sub.
func findSpan(s *obs.SpanStats, sub string) *obs.SpanStats {
	if s == nil {
		return nil
	}
	if strings.Contains(s.Name, sub) {
		return s
	}
	for _, c := range s.Children {
		if m := findSpan(c, sub); m != nil {
			return m
		}
	}
	return nil
}

// TestSpanTreeParallelism checks span assembly at parallelism 1 and 4: all
// worker partitions of an operator feed one span, so row totals match the
// serial run exactly.
func TestSpanTreeParallelism(t *testing.T) {
	const n = 5000
	for _, par := range []int{1, 4} {
		conn := obsConn(t, n, 0)
		conn.SetParallelism(par)
		res, err := conn.Query("SELECT grp, COUNT(*), SUM(val) FROM shuf GROUP BY grp")
		if err != nil {
			t.Fatalf("p=%d: %v", par, err)
		}
		traces := conn.LastTraces(1)
		if len(traces) == 0 || traces[0].Spans == nil {
			t.Fatalf("p=%d: no trace", par)
		}
		snap := traces[0]
		if snap.Parallelism != par {
			t.Errorf("p=%d: trace parallelism = %d", par, snap.Parallelism)
		}
		root := snap.Spans
		if root.Rows != int64(len(res.Rows)) {
			t.Errorf("p=%d: root span rows = %d, result rows = %d", par, root.Rows, len(res.Rows))
		}
		scan := findSpan(root, "Scan")
		if scan == nil {
			t.Fatalf("p=%d: no scan span in tree:\n%s", par, obs.RenderSpans(root))
		}
		if scan.Rows != n {
			t.Errorf("p=%d: scan span rows = %d, want %d (partitions must share one span)\n%s",
				par, scan.Rows, n, obs.RenderSpans(root))
		}
		agg := findSpan(root, "Aggregate")
		if agg == nil || agg.Rows == 0 {
			t.Errorf("p=%d: aggregate span missing or empty:\n%s", par, obs.RenderSpans(root))
		}
	}
}

func TestSlowQueryLogOverConnection(t *testing.T) {
	conn := obsConn(t, 1000, 0)
	var buf bytes.Buffer
	conn.SetSlowQueryThreshold(time.Nanosecond, &buf) // everything is slow
	if _, err := conn.Query("SELECT COUNT(*) FROM shuf WHERE val > 10"); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	var entry map[string]any
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("slow log line not JSON: %v (%q)", err, line)
	}
	if entry["fingerprint"] == "" || entry["sql"] == "" || entry["total_ms"] == nil {
		t.Fatalf("slow log entry incomplete: %v", entry)
	}
	if conn.Obs().Slow.Len() != 1 {
		t.Fatalf("slow ring len = %d, want 1", conn.Obs().Slow.Len())
	}
	traces := conn.LastTraces(1)
	if len(traces) != 1 || !traces[0].Slow {
		t.Fatalf("recent trace not marked slow: %+v", traces)
	}

	// Disabling the threshold stops both the ring and the log.
	conn.SetSlowQueryThreshold(0, nil)
	buf.Reset()
	if _, err := conn.Query("SELECT COUNT(*) FROM shuf"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 || conn.Obs().Slow.Len() != 1 {
		t.Fatal("slow tracking survived being disabled")
	}
}

// TestQueryMetrics checks the metric families a query lifecycle writes:
// outcome counters, stage histograms, and the memory-pool series (the pool
// is always registered, even without a configured limit).
func TestQueryMetrics(t *testing.T) {
	conn := obsConn(t, 2000, 8<<10)
	if _, err := conn.Query("SELECT id FROM shuf ORDER BY val"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Query("SELECT bogus_column FROM shuf"); err == nil {
		t.Fatal("expected error for bogus column")
	}
	var b strings.Builder
	if err := conn.Obs().Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`calcite_queries_started_total 2`,
		`calcite_queries_finished_total{status="ok"} 1`,
		`calcite_queries_finished_total{status="error"} 1`,
		`calcite_rows_returned_total 2000`,
		`calcite_query_stage_seconds_bucket{le="+Inf",stage="exec"} 2`,
		`calcite_query_seconds_count 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The governed sort left spill and grant evidence in the pool series.
	for _, prefix := range []string{
		"calcite_spill_events_total ",
		"calcite_spill_bytes_total ",
		"calcite_memory_granted_bytes_total ",
	} {
		val, ok := metricValue(out, prefix)
		if !ok || val <= 0 {
			t.Errorf("pool metric %q absent or zero (got %v, present=%v)", prefix, val, ok)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", out)
	}
}

// metricValue extracts the sample of an unlabeled series from exposition text.
func metricValue(exposition, prefix string) (float64, bool) {
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, prefix) {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, prefix)), 64)
			return v, err == nil
		}
	}
	return 0, false
}

// TestRowModeTracing: the row-at-a-time path counts rows through the shim
// wrapper (no per-row clock reads, but totals must still be exact).
func TestRowModeTracing(t *testing.T) {
	conn := obsConn(t, 1500, 0)
	conn.ForceRowMode(true)
	res, err := conn.Query("SELECT id FROM shuf WHERE grp < 50")
	if err != nil {
		t.Fatal(err)
	}
	traces := conn.LastTraces(1)
	if len(traces) == 0 || traces[0].Spans == nil {
		t.Fatal("row-mode query left no trace")
	}
	root := traces[0].Spans
	if root.Rows != int64(len(res.Rows)) {
		t.Fatalf("row-mode root span rows = %d, result rows = %d\n%s",
			root.Rows, len(res.Rows), obs.RenderSpans(root))
	}
}
