module calcite

go 1.22
