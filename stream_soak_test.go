package calcite_test

// Streaming soak: the CI streaming-soak job replays a bounded-skew event
// stream through the avatica serving tier — repeatedly, concurrently, with
// pagination, under a state budget small enough to spill standing window
// state — and holds the three industrial contracts of a continuous query:
//
//  1. every result set served over the wire matches the row-mode batch
//     oracle exactly (lateness covers the replay skew, so nothing drops);
//  2. the watermark-lag series on /metrics is live and nonzero while
//     emission is governed by an allowed lateness;
//  3. canceling an in-flight continuous query leaks nothing: no prepared
//     statements, no retained cursor bytes, no goroutines.

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"calcite"
	"calcite/internal/avatica"
)

const soakStreamSQL = `SELECT STREAM HOP_START(rowtime, INTERVAL '1' SECOND, INTERVAL '8' SECOND) AS ws, HOP_END(rowtime, INTERVAL '1' SECOND, INTERVAL '8' SECOND) AS we, k, COUNT(*) AS c, SUM(v) AS s FROM s.events GROUP BY HOP(rowtime, INTERVAL '1' SECOND, INTERVAL '8' SECOND, INTERVAL '2' SECOND), k`

// soakStreamHoldSQL is the same window plan with a 600s allowed lateness:
// the watermark trails the whole replay, so every pane stays live and the
// standing state must spill under the small budget instead of erroring.
const soakStreamHoldSQL = `SELECT STREAM HOP_START(rowtime, INTERVAL '1' SECOND, INTERVAL '8' SECOND) AS ws, HOP_END(rowtime, INTERVAL '1' SECOND, INTERVAL '8' SECOND) AS we, k, COUNT(*) AS c, SUM(v) AS s FROM s.events GROUP BY HOP(rowtime, INTERVAL '1' SECOND, INTERVAL '8' SECOND, INTERVAL '600' SECOND), k`

// canonWire renders wire rows for multiset comparison against the oracle:
// JSON turns int64 cells into float64, so integral floats are restored.
func canonWire(rows [][]any) [][]any {
	out := make([][]any, len(rows))
	for i, r := range rows {
		row := make([]any, len(r))
		for j, v := range r {
			if f, ok := v.(float64); ok && f == float64(int64(f)) {
				row[j] = int64(f)
			} else {
				row[j] = v
			}
		}
		out[i] = row
	}
	return out
}

func TestStreamingSoak(t *testing.T) {
	rows := genStreamEvents(8000, 16)
	conn, tb := streamFixture(t, rows, 2000)
	conn.SetParallelism(2)
	// Wide enough for retained pagination cursors; tightened to 256KiB
	// before the standing-state spill round below.
	conn.SetMemoryLimit(4 << 20)

	srv := avatica.NewServer(conn.Framework)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	client := calcite.Dial(addr)

	want := oracleWindows(t, tb, "HOP", 1000, 8000, true)
	if len(want) == 0 {
		t.Fatal("oracle produced no windows")
	}
	baseGoroutines := runtime.NumGoroutine()

	// Round 1: repeated sequential replays over the wire, each one a full
	// continuous query against the governed pool.
	for round := 0; round < 3; round++ {
		resp, err := client.Query(soakStreamSQL)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		diffRows(t, fmt.Sprintf("soak round %d", round), canonWire(resp.Rows), want)
	}

	// Round 2: concurrent clients replaying the same stream; every result
	// must still match the oracle (shared pool, shared plan cache).
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := calcite.Dial(addr)
			defer c.HTTP.CloseIdleConnections()
			resp, err := c.Query(soakStreamSQL)
			if err != nil {
				errs <- fmt.Errorf("worker %d: %w", w, err)
				return
			}
			if len(resp.Rows) != len(want) {
				errs <- fmt.Errorf("worker %d: %d windows, oracle has %d", w, len(resp.Rows), len(want))
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Round 3: paginated replay through /fetch, cursor retained on an
	// implicit statement until explicitly closed.
	frame, err := client.Do(avatica.ExecuteRequest{SQL: soakStreamSQL, FetchSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	got := append([][]any(nil), frame.Rows...)
	for frame.More {
		if frame, err = client.Fetch(frame.StatementID, 512); err != nil {
			t.Fatal(err)
		}
		got = append(got, frame.Rows...)
	}
	diffRows(t, "paginated replay", canonWire(got), want)
	if frame.StatementID != 0 {
		if err := client.Close(frame.StatementID); err != nil {
			t.Fatal(err)
		}
	}

	// Round 4: long-lateness replay holds every pane live; a 256KiB
	// budget must force standing state to spill, not fail the query.
	conn.SetMemoryLimit(256 << 10)
	spillBefore := conn.Framework.MemoryPool().Counters().SpillEvents
	resp, err := client.Query(soakStreamHoldSQL)
	if err != nil {
		t.Fatalf("long-lateness replay: %v", err)
	}
	diffRows(t, "long-lateness replay", canonWire(resp.Rows), want)
	if spills := conn.Framework.MemoryPool().Counters().SpillEvents; spills <= spillBefore {
		t.Fatalf("standing state never spilled under 256KiB budget (spill events %d -> %d)", spillBefore, spills)
	}

	// Watermark-governed emission left a live, nonzero lag series: the
	// watermark trails the stream head by exactly the allowed lateness.
	httpResp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if lag, ok := metricValue(string(body), "calcite_stream_watermark_lag_ms "); !ok || lag <= 0 {
		t.Fatalf("calcite_stream_watermark_lag_ms = %v (present=%v), want > 0", lag, ok)
	}
	if emitted, ok := metricValue(string(body), "calcite_stream_windows_emitted_total "); !ok || emitted <= 0 {
		t.Fatalf("calcite_stream_windows_emitted_total = %v (present=%v), want > 0", emitted, ok)
	}

	// Round 5: cancel an in-flight continuous query. The statement stays
	// prepared (canceled, not destroyed), the retained state is released,
	// and after Close nothing survives server-side.
	stmtID, err := client.Prepare(soakStreamHoldSQL)
	if err != nil {
		t.Fatal(err)
	}
	execDone := make(chan error, 1)
	go func() {
		_, err := client.Execute(stmtID)
		execDone <- err
	}()
	// Cancel can land before the server has begun executing the statement
	// (then it is a no-op on an idle statement), so keep re-issuing it
	// until the in-flight execution returns.
	var execErr error
	cancelDeadline := time.After(30 * time.Second)
loop:
	for {
		if err := client.Cancel(stmtID); err != nil {
			t.Fatal(err)
		}
		select {
		case execErr = <-execDone:
			break loop
		case <-cancelDeadline:
			t.Fatal("canceled execution never returned")
		case <-time.After(25 * time.Millisecond):
		}
	}
	// The race between cancel and completion is inherent; both outcomes
	// are legal, but an error must be the cancellation, not a failure.
	if execErr != nil && !strings.Contains(execErr.Error(), "canceled") {
		t.Fatalf("canceled execution failed with a non-cancellation error: %v", execErr)
	}
	if err := client.Close(stmtID); err != nil {
		t.Fatal(err)
	}

	// Leak audit: no statements, no retained cursor memory, and the
	// goroutine count settles back to its pre-soak baseline.
	if n := srv.StatementCount(); n != 0 {
		t.Fatalf("%d statements leaked after soak", n)
	}
	if b := srv.CursorBytes(); b != 0 {
		t.Fatalf("%d cursor bytes leaked after soak", b)
	}
	client.HTTP.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseGoroutines+8 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines did not settle: %d -> %d\n%s",
				baseGoroutines, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
