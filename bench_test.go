// Benchmarks regenerating the performance shape of every experiment in
// DESIGN.md (the paper has no absolute performance tables; these benches
// measure the effects the paper claims qualitatively — pushdown wins,
// metadata caching matters, heuristic fix points trade plan quality for
// planning time, materialized views accelerate aggregates).
package calcite_test

import (
	"fmt"
	"testing"
	"time"

	"calcite"
	"calcite/internal/adapter/splunk"
	"calcite/internal/adapter/sqldb"
	"calcite/internal/adapter/streamtab"
	"calcite/internal/core"
	"calcite/internal/exec"
	"calcite/internal/meta"
	"calcite/internal/parallel"
	"calcite/internal/plan"
	"calcite/internal/rel"
	"calcite/internal/rel2sql"
	"calcite/internal/rex"
	"calcite/internal/rules"
	"calcite/internal/schema"
	"calcite/internal/stream"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// --- shared fixtures ---

func benchTables(nSales, nProducts int) (*schema.MemTable, *schema.MemTable) {
	sales := make([][]any, nSales)
	for i := range sales {
		var discount any
		if i%3 == 0 {
			discount = float64(i%10) / 100
		}
		sales[i] = []any{int64(i % nProducts), discount}
	}
	products := make([][]any, nProducts)
	for i := range products {
		products[i] = []any{int64(i), fmt.Sprintf("product-%d", i)}
	}
	st := schema.NewMemTable("sales", types.Row(
		types.Field{Name: "productId", Type: types.BigInt},
		types.Field{Name: "discount", Type: types.Double.WithNullable(true)},
	), sales)
	pt := schema.NewMemTable("products", types.Row(
		types.Field{Name: "productId", Type: types.BigInt},
		types.Field{Name: "name", Type: types.Varchar},
	), products)
	pt.SetStats(schema.Statistics{RowCount: float64(nProducts), UniqueColumns: [][]int{{0}}})
	return st, pt
}

func figure4Conn(nSales, nProducts int) *calcite.Connection {
	conn := calcite.Open()
	st, pt := benchTables(nSales, nProducts)
	conn.Framework.Catalog.AddTable(st)
	conn.Framework.Catalog.AddTable(pt)
	return conn
}

const figure4SQL = `
	SELECT products.name, COUNT(*)
	FROM sales JOIN products USING (productId)
	WHERE sales.discount IS NOT NULL
	GROUP BY products.name
	ORDER BY COUNT(*) DESC`

// BenchmarkFig4_FilterIntoJoin measures the Figure 4 query with the full
// rule set (filter pushed below the join).
func BenchmarkFig4_FilterIntoJoin(b *testing.B) {
	conn := figure4Conn(20000, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Query(figure4SQL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Rules_NoFilterPushdown is the A1 ablation: the same
// query with the logical rewrite phase disabled, so the join processes
// every sales row (the paper: pushing the filter "can significantly reduce
// query execution time").
func BenchmarkAblation_Rules_NoFilterPushdown(b *testing.B) {
	conn := figure4Conn(20000, 50)
	conn.Framework.DisableLogicalPhase = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Query(figure4SQL); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2 / A4: Figure 2 federation, pushdown vs no pushdown ---

func fig2Bench(withRules bool, nOrders int) (*calcite.Connection, error) {
	mysql := sqldb.NewServer("mysql")
	// Simulated wire: a real federation pays per request and per row moved;
	// without this, in-process backends make bulk transfer artificially free.
	mysql.Network = sqldb.NetworkCost{PerRequest: 50 * time.Microsecond, PerRow: 10 * time.Microsecond}
	products := make([][]any, 100)
	for i := range products {
		products[i] = []any{int64(i), fmt.Sprintf("p%d", i)}
	}
	mysql.CreateTable("products", types.Row(
		types.Field{Name: "id", Type: types.BigInt},
		types.Field{Name: "name", Type: types.Varchar},
	), products)
	engine := splunk.NewEngine()
	engine.Network = splunk.NetworkCost{PerRequest: 50 * time.Microsecond, PerRow: 10 * time.Microsecond}
	events := make([][]any, nOrders)
	for i := range events {
		events[i] = []any{int64(i), int64(i % 100), int64(i % 60)}
	}
	engine.AddIndex(&splunk.Index{
		Name: "orders",
		Fields: []types.Field{
			{Name: "rowtime", Type: types.Timestamp},
			{Name: "product_id", Type: types.BigInt},
			{Name: "units", Type: types.BigInt},
		},
		Events: events,
	})
	engine.SetLookup(func(tbl, key string, value any) ([]string, [][]any, error) {
		rows, err := mysql.Lookup(tbl, key, value)
		return []string{"id", "name"}, rows, err
	})
	conn := calcite.Open()
	jdbc, err := sqldb.New("mysql", mysql, rel2sql.MySQL)
	if err != nil {
		return nil, err
	}
	conn.RegisterAdapter(jdbc)
	sa := splunk.New("splunk", engine)
	if withRules {
		conn.RegisterAdapter(sa)
	} else {
		conn.Framework.Catalog.AddSchema(sa.AdapterSchema())
		conn.Framework.PhysicalRules = append(conn.Framework.PhysicalRules, sa.Rules()[0])
		conn.Framework.Converters = append(conn.Framework.Converters, sa.Converters()...)
	}
	return conn, nil
}

const fig2SQL = `SELECT p.name, o.units
	FROM splunk.orders o JOIN mysql.products p ON o.product_id = p.id
	WHERE o.units > 55`

// BenchmarkFig2_Pushdown: filter + join pushed into the Splunk engine.
func BenchmarkFig2_Pushdown(b *testing.B) {
	conn, err := fig2Bench(true, 5000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Query(fig2SQL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2_NoPushdown: everything shipped to the enumerable engine.
func BenchmarkFig2_NoPushdown(b *testing.B) {
	conn, err := fig2Bench(false, 5000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Query(fig2SQL); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: planner engines over join-reordering workloads ---

// chainJoinPlan builds a left-deep chain of n joins with poor initial order
// (largest table first).
func chainJoinPlan(n int) rel.Node {
	sizes := []float64{100000, 10000, 1000, 100, 10, 5}
	var node rel.Node
	for i := 0; i <= n; i++ {
		t := schema.NewMemTable(fmt.Sprintf("t%d", i), types.Row(
			types.Field{Name: fmt.Sprintf("k%d", i), Type: types.BigInt},
			types.Field{Name: fmt.Sprintf("v%d", i), Type: types.Varchar},
		), nil)
		t.SetStats(schema.Statistics{RowCount: sizes[i%len(sizes)]})
		scan := rel.NewTableScan(trait.Logical, t, []string{t.Name()})
		if node == nil {
			node = scan
			continue
		}
		leftWidth := rel.FieldCount(node)
		cond := rex.Eq(
			rex.NewInputRef(leftWidth-2, types.BigInt),
			rex.NewInputRef(leftWidth, types.BigInt),
		)
		node = rel.NewJoin(rel.InnerJoin, node, scan, cond)
	}
	return node
}

func benchPlanner(b *testing.B, mode plan.FixPointMode, delta float64, joins int) {
	logical := chainJoinPlan(joins)
	allRules := append(exec.Rules(), rules.JoinReorderRules()...)
	allRules = append(allRules, rules.DefaultLogicalRules()...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vp := plan.NewVolcanoPlanner(allRules...)
		vp.Mode = mode
		vp.Delta = delta
		vp.Meta = meta.NewQuery(exec.MetadataProvider())
		if _, err := vp.Optimize(logical, trait.Enumerable); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(vp.ExpressionCount()), "exprs")
			b.ReportMetric(float64(vp.Fired), "rule-firings")
		}
	}
}

// BenchmarkPlanner_VolcanoExhaustive_3Joins explores the space exhaustively.
func BenchmarkPlanner_VolcanoExhaustive_3Joins(b *testing.B) {
	benchPlanner(b, plan.Exhaustive, 0, 3)
}

// BenchmarkPlanner_VolcanoHeuristic_3Joins stops when cost improvement
// drops below δ (the paper's heuristic fix point).
func BenchmarkPlanner_VolcanoHeuristic_3Joins(b *testing.B) {
	benchPlanner(b, plan.Heuristic, 0.05, 3)
}

// BenchmarkPlanner_VolcanoExhaustive_4Joins scales the search space up
// (the exhaustive space grows super-exponentially; 5 joins takes ~26 s per
// plan on this engine, so the suite stops at 4).
func BenchmarkPlanner_VolcanoExhaustive_4Joins(b *testing.B) {
	benchPlanner(b, plan.Exhaustive, 0, 4)
}

// BenchmarkPlanner_VolcanoHeuristic_5Joins: the δ fix point keeps large
// spaces tractable.
func BenchmarkPlanner_VolcanoHeuristic_5Joins(b *testing.B) {
	benchPlanner(b, plan.Heuristic, 0.05, 5)
}

// BenchmarkPlanner_Hep_5Joins is the A2 ablation: rule-driven planning with
// no cost model (fast, but keeps the initial join order).
func BenchmarkPlanner_Hep_5Joins(b *testing.B) {
	logical := chainJoinPlan(5)
	allRules := exec.Rules()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hp := plan.NewHepPlanner(allRules...)
		_ = hp.Optimize(logical)
	}
}

// --- E8: metadata cache ---

func benchMetadata(b *testing.B, cached bool) {
	logical := chainJoinPlan(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := meta.NewQuery()
		q.CacheEnabled = cached
		// The workload of §6's example: "multiple types of metadata such as
		// cardinality, average row size, and selectivity ... all these
		// computations rely on the cardinality of their inputs". Rules query
		// the same nodes repeatedly over a planning session.
		for pass := 0; pass < 20; pass++ {
			rel.Walk(logical, func(n rel.Node) bool {
				q.RowCount(n)
				q.AverageRowSize(n)
				q.CumulativeCost(n)
				return true
			})
		}
		if i == 0 {
			b.ReportMetric(float64(q.Calls), "provider-calls")
		}
	}
}

// BenchmarkMetadata_CacheOn measures metadata with the memo cache (§6: the
// cache "yields significant performance improvements").
func BenchmarkMetadata_CacheOn(b *testing.B) { benchMetadata(b, true) }

// BenchmarkMetadata_CacheOff is the A3 ablation.
func BenchmarkMetadata_CacheOff(b *testing.B) { benchMetadata(b, false) }

// --- E9: materialized views ---

func matViewConn(b *testing.B, withView bool) *calcite.Connection {
	conn := calcite.Open()
	rows := make([][]any, 50000)
	regions := []string{"EU", "US", "APAC", "LATAM"}
	for i := range rows {
		rows[i] = []any{regions[i%4], float64(i % 500)}
	}
	conn.AddTable("sales", calcite.Columns{
		{Name: "region", Type: calcite.VarcharType},
		{Name: "revenue", Type: calcite.DoubleType},
	}, rows)
	if withView {
		if _, err := conn.Exec(`CREATE MATERIALIZED VIEW rev AS
			SELECT region, SUM(revenue) AS total FROM sales GROUP BY region`); err != nil {
			b.Fatal(err)
		}
	}
	return conn
}

const matViewSQL = "SELECT region, SUM(revenue) AS total FROM sales GROUP BY region"

// BenchmarkMatView_Rewrite answers the aggregate from the materialization.
func BenchmarkMatView_Rewrite(b *testing.B) {
	conn := matViewConn(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Query(matViewSQL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatView_BaseTables computes it from scratch.
func BenchmarkMatView_BaseTables(b *testing.B) {
	conn := matViewConn(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Query(matViewSQL); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6/E14: adapter pushdown translation throughput ---

// BenchmarkTable2_AdapterPushdown plans (not executes) the four Table 2
// pushdown queries, measuring optimizer + translator cost per backend.
func BenchmarkTable2_AdapterPushdown(b *testing.B) {
	conn, err := fig2Bench(true, 100)
	if err != nil {
		b.Fatal(err)
	}
	queries := []string{
		"SELECT name FROM mysql.products WHERE id > 10",
		"SELECT units FROM splunk.orders WHERE units > 55",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, _, err := conn.Plan(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- end-to-end SQL throughput over the enumerable engine ---

func BenchmarkSQL_FilterProject(b *testing.B) {
	conn := figure4Conn(10000, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Query("SELECT productId FROM sales WHERE discount IS NOT NULL"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQL_HashJoin(b *testing.B) {
	conn := figure4Conn(10000, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Query("SELECT COUNT(*) FROM sales JOIN products USING (productId)"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQL_WindowAggregate(b *testing.B) {
	conn := figure4Conn(5000, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Query(`SELECT productId,
			COUNT(*) OVER (PARTITION BY productId ORDER BY productId ROWS 10 PRECEDING) AS c
			FROM sales`); err != nil {
			b.Fatal(err)
		}
	}
}

// --- vectorized batch execution vs row-at-a-time interpretation ---

// vecConn builds a 3-column table of nRows rows for the row/batch A-B
// benches (ints, nullable floats, short strings).
func vecConn(nRows int) *calcite.Connection {
	conn := calcite.Open()
	rows := make([][]any, nRows)
	for i := range rows {
		var score any
		if i%5 != 0 {
			score = float64(i%1000) / 4
		}
		rows[i] = []any{int64(i), score, fmt.Sprintf("n%03d", i%500)}
	}
	conn.AddTable("big", calcite.Columns{
		{Name: "id", Type: calcite.BigIntType},
		{Name: "score", Type: calcite.DoubleType},
		{Name: "name", Type: calcite.VarcharType},
	}, rows)
	return conn
}

// benchRowVsBatch plans sql once and then measures pure execution of the
// same physical plan under the row and batch conventions (b.Run sub-benches
// "Row" and "Batch"), so the comparison isolates the execution layer.
func benchRowVsBatch(b *testing.B, conn *calcite.Connection, sql string, wantRows int) {
	_, optimized, err := conn.Plan(sql)
	if err != nil {
		b.Fatal(err)
	}
	runMode := func(b *testing.B, batch bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx := exec.NewContext()
			ctx.BatchMode = batch
			rows, err := exec.Execute(ctx, optimized)
			if err != nil {
				b.Fatal(err)
			}
			if wantRows >= 0 && len(rows) != wantRows {
				b.Fatalf("got %d rows, want %d", len(rows), wantRows)
			}
		}
	}
	b.Run("Row", func(b *testing.B) { runMode(b, false) })
	b.Run("Batch", func(b *testing.B) { runMode(b, true) })
}

// BenchmarkExec_RowVsBatch_Filter: selective predicate over 200k rows.
func BenchmarkExec_RowVsBatch_Filter(b *testing.B) {
	conn := vecConn(200000)
	benchRowVsBatch(b, conn,
		"SELECT id FROM big WHERE id > 150000 AND score IS NOT NULL", -1)
}

// BenchmarkExec_RowVsBatch_Project: arithmetic + comparison projection over
// every row of 200k.
func BenchmarkExec_RowVsBatch_Project(b *testing.B) {
	conn := vecConn(200000)
	benchRowVsBatch(b, conn,
		"SELECT id + 1, score * 2, id > 1000 FROM big", 200000)
}

// BenchmarkExec_RowVsBatch_HashJoin: 100k-row probe side against a 100-row
// build side, emitting the joined rows.
func BenchmarkExec_RowVsBatch_HashJoin(b *testing.B) {
	conn := figure4Conn(100000, 100)
	benchRowVsBatch(b, conn,
		"SELECT products.name FROM sales JOIN products USING (productId)", 100000)
}

// --- morsel-driven parallel execution scaling ---

// benchSerialVsParallel plans sql once, then measures pure execution of the
// same physical plan at 1, 2, 4 and 8 workers (sub-benches "P1".."P8"). P1
// is the untouched serial plan; the others run the parallel rewrite
// (morsels, exchanges, partitioned operators) over a shared worker pool.
// Scaling is only visible on a multi-core runner: at GOMAXPROCS=1 the
// parallel variants measure pure orchestration overhead.
func benchSerialVsParallel(b *testing.B, conn *calcite.Connection, sql string, wantRows int) {
	_, optimized, err := conn.Plan(sql)
	if err != nil {
		b.Fatal(err)
	}
	pool := conn.Framework.WorkerPool()
	for _, p := range []int{1, 2, 4, 8} {
		plan := optimized
		if p > 1 {
			plan = parallel.Parallelize(optimized, pool, p)
		}
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows, err := exec.Execute(exec.NewContext(), plan)
				if err != nil {
					b.Fatal(err)
				}
				if wantRows >= 0 && len(rows) != wantRows {
					b.Fatalf("got %d rows, want %d", len(rows), wantRows)
				}
			}
		})
	}
}

// BenchmarkExec_SerialVsParallel_Filter: selective predicate over 400k rows,
// no pipeline breaker — pure scan/filter scaling.
func BenchmarkExec_SerialVsParallel_Filter(b *testing.B) {
	conn := vecConn(400000)
	benchSerialVsParallel(b, conn,
		"SELECT id FROM big WHERE id > 300000 AND score IS NOT NULL", -1)
}

// BenchmarkExec_SerialVsParallel_HashJoin: 200k-row probe side against a
// 100-row build side (partitioned build + probe).
func BenchmarkExec_SerialVsParallel_HashJoin(b *testing.B) {
	conn := figure4Conn(200000, 100)
	benchSerialVsParallel(b, conn,
		"SELECT products.name FROM sales JOIN products USING (productId)", 200000)
}

// BenchmarkExec_SerialVsParallel_Aggregate: grouped aggregate over 400k rows
// (thread-local pre-aggregation + hash exchange + final merge).
func BenchmarkExec_SerialVsParallel_Aggregate(b *testing.B) {
	conn := figure4Conn(400000, 50)
	benchSerialVsParallel(b, conn,
		"SELECT productId, COUNT(*), SUM(discount) FROM sales GROUP BY productId", 50)
}

// --- parse/plan micro benches (framework overhead) ---

func BenchmarkParseOnly(b *testing.B) {
	conn := figure4Conn(10, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Framework.ParseAndConvert(figure4SQL); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanOnly(b *testing.B) {
	conn := figure4Conn(10, 5)
	logical, err := conn.Framework.ParseAndConvert(figure4SQL)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Framework.Optimize(logical); err != nil {
			b.Fatal(err)
		}
	}
}

// --- sanity: pushdown benches agree on results (guards the comparison) ---

func TestBenchFixturesAgree(t *testing.T) {
	withPD, err := fig2Bench(true, 500)
	if err != nil {
		t.Fatal(err)
	}
	withoutPD, err := fig2Bench(false, 500)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := withPD.Query(fig2SQL)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := withoutPD.Query(fig2SQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("pushdown %d rows vs no-pushdown %d rows", len(r1.Rows), len(r2.Rows))
	}
	_ = core.VolcanoCostBased
}

// --- E9: histogram-driven join ordering (ANALYZE) ---

// joinOrderConn builds a skewed 5-way star schema: the fact table's fk2
// values concentrate on the low end of d2's key space, so the filter on d2
// keeps half the fact rows while looking like a 0.5-selectivity guess on an
// unanalyzed catalog — and the filter on d3 keeps 2% of the fact rows while
// looking identical to the optimizer until histograms say otherwise.
func joinOrderConn(factRows int) *calcite.Connection {
	conn := calcite.Open()
	conn.SetParallelism(1)
	fact := make([][]any, factRows)
	for i := range fact {
		fact[i] = []any{
			int64(i % 50),         // fk1 → d1 (50 rows)
			int64((i * i) % 2000), // fk2 → d2, quadratic residues skew low keys
			int64(i % 2000),       // fk3 → d3
			int64(i % 400),        // fk4 → d4
			float64(i % 97),
		}
	}
	conn.AddTable("sales", calcite.Columns{
		{Name: "fk1", Type: calcite.BigIntType},
		{Name: "fk2", Type: calcite.BigIntType},
		{Name: "fk3", Type: calcite.BigIntType},
		{Name: "fk4", Type: calcite.BigIntType},
		{Name: "amt", Type: calcite.DoubleType},
	}, fact)
	dim := func(name string, n int, suffix string) {
		rows := make([][]any, n)
		for i := range rows {
			rows[i] = []any{int64(i), int64(i)}
		}
		conn.AddTable(name, calcite.Columns{
			{Name: "k" + suffix, Type: calcite.BigIntType},
			{Name: "v" + suffix, Type: calcite.BigIntType},
		}, rows)
	}
	dim("d1", 50, "1")
	dim("d2", 2000, "2")
	dim("d3", 2000, "3")
	dim("d4", 400, "4")
	return conn
}

const joinOrderSQL = `SELECT SUM(f.amt) AS total FROM sales f
	JOIN d1 ON f.fk1 = d1.k1
	JOIN d2 ON f.fk2 = d2.k2
	JOIN d3 ON f.fk3 = d3.k3
	JOIN d4 ON f.fk4 = d4.k4
	WHERE d2.v2 < 1000 AND d3.v3 < 40`

// BenchmarkOptimize_JoinOrder measures plan quality, not planner speed: each
// iteration plans AND executes the 5-way star join. The unanalyzed variant
// orders dimensions by the textbook constants; the analyzed variant orders
// them by histogram/NDV estimates, probing the fact table through the most
// selective dimensions first.
func BenchmarkOptimize_JoinOrder(b *testing.B) {
	for _, analyzed := range []bool{false, true} {
		b.Run(fmt.Sprintf("analyzed=%v", analyzed), func(b *testing.B) {
			conn := joinOrderConn(60000)
			if analyzed {
				for _, tab := range []string{"sales", "d1", "d2", "d3", "d4"} {
					if _, err := conn.Exec("ANALYZE TABLE " + tab); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := conn.Query(joinOrderSQL)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 1 {
					b.Fatalf("rows: %v", res.Rows)
				}
			}
		})
	}
}

// --- memory governance: spill vs in-memory throughput ---

// benchSpillVsInMemory plans sql once and measures execution at three
// budgets: unlimited (nothing tracked), tracked-unlimited (the governance
// accounting overhead in isolation), and a budget of roughly a quarter of
// the query's working set (the spill path: external sort runs, Grace join
// partitions, flushed aggregation states hit the disk every iteration).
func benchSpillVsInMemory(b *testing.B, mk func() *calcite.Connection, sql string, quarterBudget int64, wantRows int) {
	cases := []struct {
		name   string
		budget int64
	}{
		{"Unlimited", 0},
		{"QuarterBudget", quarterBudget},
	}
	for _, c := range cases {
		conn := mk()
		conn.SetParallelism(1)
		if c.budget > 0 {
			conn.SetMemoryLimit(c.budget)
		}
		_, optimized, err := conn.Plan(sql)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows, err := conn.Framework.ExecutePhysical(optimized)
				if err != nil {
					b.Fatal(err)
				}
				if wantRows >= 0 && len(rows) != wantRows {
					b.Fatalf("got %d rows, want %d", len(rows), wantRows)
				}
			}
		})
	}
}

// --- window execution: recompute vs incremental vs parallel ---

// windowBenchConn is the window fixture: 100k time-series rows in 8
// partitions, so a 1000-row sliding frame genuinely slides.
func windowBenchConn() *calcite.Connection {
	conn := calcite.Open()
	rows := make([][]any, 100000)
	for i := range rows {
		rows[i] = []any{int64(i % 8), int64(i), float64(i%1000) / 4}
	}
	conn.AddTable("wseries", calcite.Columns{
		{Name: "grp", Type: calcite.BigIntType},
		{Name: "seq", Type: calcite.BigIntType},
		{Name: "score", Type: calcite.DoubleType},
	}, rows)
	return conn
}

const windowBenchSQL = `SELECT grp, SUM(score) OVER (PARTITION BY grp ORDER BY seq ROWS 1000 PRECEDING) AS s FROM wseries`

func benchWindow(b *testing.B, parallelism int, recompute bool) {
	conn := windowBenchConn()
	conn.SetParallelism(parallelism)
	conn.ForceWindowRecompute(recompute)
	_, optimized, err := conn.Plan(windowBenchSQL)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := conn.Framework.ExecutePhysical(optimized)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 100000 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkExec_Window_Recompute is the seed's O(n·frame) baseline: every
// 1000-row frame re-accumulated from scratch.
func BenchmarkExec_Window_Recompute(b *testing.B) { benchWindow(b, 1, true) }

// BenchmarkExec_Window_Incremental is the default path: retractable
// accumulators slide each frame in O(1) amortized.
func BenchmarkExec_Window_Incremental(b *testing.B) { benchWindow(b, 1, false) }

// BenchmarkExec_Window_Parallel adds partition-parallel execution across 4
// workers on top of the incremental path.
func BenchmarkExec_Window_Parallel(b *testing.B) { benchWindow(b, 4, false) }

// spillBenchConn is a 100k-row single-table fixture (~8MB working set as
// materialized rows).
func spillBenchConn() *calcite.Connection {
	conn := calcite.Open()
	rows := make([][]any, 100000)
	for i := range rows {
		rows[i] = []any{int64(i), int64((i * 7919) % 100000), float64(i%1000) / 4, int64(i % 500)}
	}
	conn.AddTable("big", calcite.Columns{
		{Name: "id", Type: calcite.BigIntType},
		{Name: "shuffled", Type: calcite.BigIntType},
		{Name: "score", Type: calcite.DoubleType},
		{Name: "grp", Type: calcite.BigIntType},
	}, rows)
	return conn
}

// BenchmarkExec_SpillVsInMemory_Sort: full 100k-row sort; the quarter
// budget forces several external runs plus the k-way merge from disk.
func BenchmarkExec_SpillVsInMemory_Sort(b *testing.B) {
	benchSpillVsInMemory(b, spillBenchConn,
		"SELECT shuffled, id FROM big ORDER BY shuffled", 2<<20, 100000)
}

// BenchmarkExec_SpillVsInMemory_HashJoin: self-join with a 100k-row build
// side; the quarter budget forces Grace partitioning of both sides.
func BenchmarkExec_SpillVsInMemory_HashJoin(b *testing.B) {
	benchSpillVsInMemory(b, spillBenchConn,
		"SELECT a.id FROM big a JOIN big b ON a.id = b.shuffled", 4<<20, 100000)
}

// BenchmarkExec_SpillVsInMemory_Aggregate: 100k rows into 500 groups with
// value-retaining aggregates; the quarter budget flushes accumulator states
// to partitions and re-merges them.
func BenchmarkExec_SpillVsInMemory_Aggregate(b *testing.B) {
	benchSpillVsInMemory(b, spillBenchConn,
		"SELECT grp, COUNT(*), SUM(score), MIN(shuffled), MAX(shuffled) FROM big GROUP BY grp", 64<<10, 500)
}

// --- streaming: incremental window maintenance vs per-window recompute ---

// streamBenchConn is the continuous-query fixture: a 100k-event stream in
// 8 keys with ~200ms mean spacing behind a stream table, so an 16s/1s HOP
// keeps 16 panes of standing state per key and each event overlaps 16
// windows.
func streamBenchConn(b *testing.B) (*calcite.Connection, *streamtab.Table) {
	b.Helper()
	tb := streamtab.NewTable("events", types.Row(
		types.Field{Name: "rowtime", Type: types.Timestamp},
		types.Field{Name: "k", Type: types.BigInt},
		types.Field{Name: "v", Type: types.BigInt},
	), 0)
	rng := uint64(0x9E3779B97F4A7C15)
	next := func(mod int64) int64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int64(rng>>33) % mod
	}
	ts := int64(0)
	for i := 0; i < 100000; i++ {
		ts += next(400)
		if err := tb.Append([]any{ts, next(8), next(1000)}); err != nil {
			b.Fatal(err)
		}
	}
	conn := calcite.Open()
	sa := streamtab.New("s")
	sa.AddTable(tb)
	conn.RegisterAdapter(sa)
	return conn, tb
}

const streamBenchSQL = `SELECT STREAM HOP_START(rowtime, INTERVAL '1' SECOND, INTERVAL '16' SECOND) AS ws, HOP_END(rowtime, INTERVAL '1' SECOND, INTERVAL '16' SECOND) AS we, k, COUNT(*) AS c, SUM(v) AS s FROM s.events GROUP BY HOP(rowtime, INTERVAL '1' SECOND, INTERVAL '16' SECOND), k`

// BenchmarkExec_Stream_IncrementalVsRecompute contrasts the continuous
// HOP query on the vectorized incremental path (one pane accumulation per
// event, windows assembled by merging pane states at emission) against the
// row-mode oracle, which re-materializes every event into each of the 16
// windows it overlaps and recomputes each window's aggregates from
// scratch — the §7.2 "re-executing the query per window" strawman.
func BenchmarkExec_Stream_IncrementalVsRecompute(b *testing.B) {
	conn, tb := streamBenchConn(b)
	conn.SetParallelism(1)
	_, optimized, err := conn.Plan(streamBenchSQL)
	if err != nil {
		b.Fatal(err)
	}
	first, err := conn.Framework.ExecutePhysical(optimized)
	if err != nil {
		b.Fatal(err)
	}
	wantRows := len(first)
	if wantRows == 0 {
		b.Fatal("stream query emitted no windows")
	}
	b.Run("Incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := conn.Framework.ExecutePhysical(optimized)
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) != wantRows {
				b.Fatalf("got %d windows, want %d", len(rows), wantRows)
			}
		}
	})
	b.Run("Recompute", func(b *testing.B) {
		cur, err := tb.StreamScan()
		if err != nil {
			b.Fatal(err)
		}
		events, err := stream.EventsFromCursor(cur, 0)
		if err != nil {
			b.Fatal(err)
		}
		calls := []rex.AggCall{
			rex.NewAggCall(rex.AggCount, nil, false, "c"),
			rex.NewAggCall(rex.AggSum, []int{2}, false, "s"),
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wins, err := stream.Hop(events, 1000, 16000, []int{1}, calls)
			if err != nil {
				b.Fatal(err)
			}
			if len(wins) != wantRows {
				b.Fatalf("oracle got %d windows, incremental emitted %d", len(wins), wantRows)
			}
		}
	})
}

// BenchmarkExec_Stream_Parallel runs the same continuous HOP query with the
// stream hash-exchanged across 4 workers on the group keys, each worker
// maintaining the panes of its key range, merged back into deterministic
// emission order.
func BenchmarkExec_Stream_Parallel(b *testing.B) {
	conn, _ := streamBenchConn(b)
	conn.SetParallelism(4)
	_, optimized, err := conn.Plan(streamBenchSQL)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wantRows int
	for i := 0; i < b.N; i++ {
		rows, err := conn.Framework.ExecutePhysical(optimized)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			wantRows = len(rows)
			if wantRows == 0 {
				b.Fatal("stream query emitted no windows")
			}
		} else if len(rows) != wantRows {
			b.Fatalf("got %d windows, want %d", len(rows), wantRows)
		}
	}
}
