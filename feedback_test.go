// Acceptance tests for the cardinality-feedback loop: shared plan-cache /
// feedback-store invalidation, EXPLAIN ANALYZE estimate rendering, adaptive
// build/probe swapping after a hash-join build overshoot, and convergence of
// a stale-statistics workload toward the analyzed plan's runtime.
package calcite_test

import (
	"strings"
	"testing"
	"time"

	"calcite"
	"calcite/internal/obs"
)

// TestFeedbackSharedInvalidation: the feedback store must flush through the
// same DDL/ANALYZE funnel as the plan cache — after ANALYZE, both are empty
// together.
func TestFeedbackSharedInvalidation(t *testing.T) {
	conn := starConn(2000)
	conn.SetParallelism(1)
	for i := 0; i < 2; i++ {
		if _, err := conn.Query("SELECT COUNT(*) AS n FROM sales WHERE amt < 50"); err != nil {
			t.Fatal(err)
		}
	}
	if conn.Framework.PlanCache().Len() == 0 {
		t.Fatal("plan cache empty after repeated query")
	}
	if fps, _ := conn.Framework.Feedback().Size(); fps == 0 {
		t.Fatal("feedback store empty after traced executions")
	}

	if _, err := conn.Exec("ANALYZE TABLE sales"); err != nil {
		t.Fatal(err)
	}
	if n := conn.Framework.PlanCache().Len(); n != 0 {
		t.Fatalf("plan cache not flushed by ANALYZE: %d entries", n)
	}
	fps, ops := conn.Framework.Feedback().Size()
	if fps != 0 || ops != 0 {
		t.Fatalf("feedback store not flushed by ANALYZE: %d fingerprints, %d corrections", fps, ops)
	}
	if c := conn.Framework.Feedback().Counters(); c.Invalidations == 0 {
		t.Fatal("feedback invalidation not counted")
	}
}

// TestFeedbackDisabled: with the loop off, executions leave no feedback
// state behind.
func TestFeedbackDisabled(t *testing.T) {
	conn := starConn(1000)
	conn.EnableFeedback(false)
	if _, err := conn.Query("SELECT COUNT(*) AS n FROM sales WHERE amt < 50"); err != nil {
		t.Fatal(err)
	}
	if fps, ops := conn.Framework.Feedback().Size(); fps != 0 || ops != 0 {
		t.Fatalf("disabled feedback still harvested: %d fingerprints, %d corrections", fps, ops)
	}
}

// TestExplainAnalyzeEstimates: EXPLAIN ANALYZE renders the optimizer's est=
// next to actual rows=, with the drift marker on operators whose estimate
// was off by DriftQError or more, and the same numbers land in the feedback
// report.
func TestExplainAnalyzeEstimates(t *testing.T) {
	conn := starConn(2000)
	conn.SetParallelism(1)
	// Unanalyzed, "amt < 1000" defaults to selectivity 0.5 (est 1000) but
	// amt values lie in [0, 97): every row passes, q-error = 2 = drift.
	res, err := conn.Query("EXPLAIN ANALYZE SELECT COUNT(*) AS n FROM sales WHERE amt < 1000")
	if err != nil {
		t.Fatal(err)
	}
	text := res.Plan
	if !strings.Contains(text, ", est=") {
		t.Fatalf("EXPLAIN ANALYZE missing estimates:\n%s", text)
	}
	if !strings.Contains(text, "!]") {
		t.Fatalf("EXPLAIN ANALYZE missing drift marker for a 2x misestimate:\n%s", text)
	}

	reports := conn.FeedbackReport()
	if len(reports) == 0 {
		t.Fatal("no feedback report after EXPLAIN ANALYZE")
	}
	r := reports[0]
	if r.MaxQError < 2 || len(r.Ops) == 0 {
		t.Fatalf("report lacks the observed drift: %+v", r)
	}
	var drifted bool
	for _, op := range r.Ops {
		if op.EstRows > 0 && op.ActualRows > 0 && op.QError >= 2 {
			drifted = true
		}
	}
	if !drifted {
		t.Fatalf("no operator carries est/actual with the 2x error: %+v", r.Ops)
	}
}

// TestFeedbackBuildOvershootSwap: a hash join whose build side produces far
// more rows than estimated must (a) record the overshoot, (b) swap build and
// probe sides at the next planning of the statement, and (c) keep the output
// identical through the column-restoring projection.
func TestFeedbackBuildOvershootSwap(t *testing.T) {
	conn := starConn(2000)
	conn.SetParallelism(1)
	// Written order keeps d1 (50 rows) on the probe side and the filtered d2
	// on the build side. Unanalyzed, the three always-true range conjuncts
	// estimate 0.5^3 = 0.125 of d2's 2000 rows (est 250), but all 2000 pass:
	// an 8x build overshoot, past the 4x/256-row thresholds.
	const sql = `SELECT COUNT(*) AS n FROM d1
		JOIN d2 ON d1.k1 = d2.k2
		WHERE d2.v2 < 5000 AND d2.v2 > -1 AND d2.k2 < 5000`

	first, err := conn.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	fb := conn.Framework.Feedback()
	if c := fb.Counters(); c.BuildOvershoots == 0 {
		t.Fatalf("build overshoot not recorded: %+v", c)
	}

	// The overshoot marked the statement for replanning; the second
	// execution replans and the adaptive pass swaps the join's sides.
	second, err := conn.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if c := fb.Counters(); c.SwapsApplied == 0 {
		t.Fatalf("build/probe swap not applied on replan: %+v", c)
	}
	if len(first.Rows) != 1 || len(second.Rows) != 1 || first.Rows[0][0] != second.Rows[0][0] {
		t.Fatalf("swap changed the result: %v vs %v", first.Rows, second.Rows)
	}

	// The executed span tree of the second run has the big side as the
	// join's first (probe) child and d1 as the build input.
	traces := conn.LastTraces(1)
	if len(traces) == 0 || traces[0].Spans == nil {
		t.Fatal("no trace for the swapped run")
	}
	join := findSpan(traces[0].Spans, "HashJoin")
	if join == nil || len(join.Children) != 2 {
		t.Fatalf("no 2-input join span:\n%s", obs.RenderSpans(traces[0].Spans))
	}
	if !spanSubtreeHasTable(join.Children[0], "d2") || !spanSubtreeHasTable(join.Children[1], "d1") {
		t.Fatalf("join sides not swapped (want d2 probe, d1 build):\n%s",
			obs.RenderSpans(traces[0].Spans))
	}
}

// spanSubtreeHasTable reports whether any span under s scans table.
func spanSubtreeHasTable(s *obs.SpanStats, table string) bool {
	if s == nil {
		return false
	}
	if strings.Contains(s.Attrs, "table=["+table+"]") {
		return true
	}
	for _, c := range s.Children {
		if spanSubtreeHasTable(c, table) {
			return true
		}
	}
	return false
}

// bestOf runs sql n times and returns the fastest wall-clock execution.
func bestOf(t *testing.T, conn *calcite.Connection, sql string, n int) time.Duration {
	t.Helper()
	best := time.Duration(1<<63 - 1)
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := conn.Query(sql); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// TestFeedbackConvergence is the acceptance test for the feedback loop: a
// star-join workload planned with stale (never-ANALYZEd) statistics must,
// after at most 5 executions, run within 2x of the fully-ANALYZEd plan's
// runtime — the harvested cardinalities steer the join-order enumeration to
// the same neighborhood the real statistics would.
func TestFeedbackConvergence(t *testing.T) {
	const factRows = 20000

	analyzed := starConn(factRows)
	analyzed.SetParallelism(1)
	analyzeStar(t, analyzed)
	bestOf(t, analyzed, starQuery, 1) // warm the plan cache
	baseline := bestOf(t, analyzed, starQuery, 3)

	stale := starConn(factRows)
	stale.SetParallelism(1)
	// Converge: each execution harvests actuals; drifted statements are
	// re-planned with corrected cardinalities on their next execution.
	want := runRows(t, analyzed, starQuery)
	for i := 0; i < 5; i++ {
		got := runRows(t, stale, starQuery)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("execution %d: feedback changed the result: %v vs %v", i, got, want)
		}
	}
	if c := stale.Framework.Feedback().Counters(); c.Replans == 0 {
		t.Fatalf("stale-stats workload never requested a replan: %+v", c)
	}

	converged := bestOf(t, stale, starQuery, 3)
	if converged > 2*baseline {
		t.Fatalf("not converged after 5 executions: %v vs analyzed %v (limit 2x)",
			converged, baseline)
	}
}
