// Command calcite is an interactive SQL shell over the framework: it loads
// CSV directories as schemas (the quickstart adapter) plus an optional demo
// catalog, then reads SQL statements from stdin and prints results.
//
// Usage:
//
//	calcite -csv path/to/dir          # load *.csv as tables in schema "csv"
//	calcite -demo                     # load the built-in demo tables
//	echo "SELECT 1+1" | calcite -demo
//
// Statistics and plans are first-class in the shell: ANALYZE TABLE t
// collects histograms/NDV sketches for the cost-based optimizer, and
// EXPLAIN <query> prints the optimized plan with per-operator rows=/cost=
// estimates (EXPLAIN LOGICAL for the pre-optimization plan).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"calcite"
	"calcite/internal/adapter/csvfile"
	"calcite/internal/memory"
	"calcite/internal/obs"
	"calcite/internal/types"
)

func main() {
	csvDir := flag.String("csv", "", "directory of CSV files to load as schema 'csv'")
	demo := flag.Bool("demo", false, "load demo tables (emps, depts)")
	par := flag.Int("parallel", 0, "worker count for parallel execution (0 = GOMAXPROCS, 1 = serial)")
	mem := flag.String("mem", "", "execution-memory budget, e.g. 64MB or 1GiB (empty = unlimited); operators spill to disk beyond it")
	queryMem := flag.String("querymem", "", "per-query memory cap, e.g. 16MB (empty = bounded by -mem only)")
	noSpill := flag.Bool("nospill", false, "fail queries that exceed the memory budget instead of spilling")
	slowQuery := flag.Duration("slowquery", 0, "slow-query threshold, e.g. 250ms (0 = disabled); slow queries are logged as JSON lines on stderr")
	trace := flag.Bool("trace", false, "print the per-operator trace (rows/batches/elapsed/memory) after each statement")
	fbOn := flag.Bool("feedback", true, "harvest actual row counts from each execution and re-plan drifted statements with corrected cardinalities")
	flag.Parse()

	conn, err := calcite.OpenChecked()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	conn.SetParallelism(*par)
	if *slowQuery > 0 {
		conn.SetSlowQueryThreshold(*slowQuery, os.Stderr)
	}
	traceOn = *trace
	if *mem != "" {
		n, err := memory.ParseBytes(*mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		conn.SetMemoryLimit(n)
	}
	if *queryMem != "" {
		n, err := memory.ParseBytes(*queryMem)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		conn.SetQueryMemoryLimit(n)
	}
	conn.EnableSpill(!*noSpill)
	conn.EnableFeedback(*fbOn)
	if *csvDir != "" {
		a, err := csvfile.Load("csv", *csvDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		conn.RegisterAdapter(a)
	}
	if *demo {
		loadDemo(conn)
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminal()
	if interactive {
		fmt.Println("calcite shell — end statements with ';', \\q to quit")
		fmt.Println("  ANALYZE TABLE <t> collects optimizer statistics; EXPLAIN <query> shows the plan with estimates")
		fmt.Println("  EXPLAIN ANALYZE <query> runs it and reports per-operator peak memory and spill counters")
	}
	var buf strings.Builder
	prompt := func() {
		if interactive {
			if buf.Len() == 0 {
				fmt.Print("calcite> ")
			} else {
				fmt.Print("      -> ")
			}
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "\\q" || strings.EqualFold(trimmed, "quit") {
			return
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(strings.TrimSpace(buf.String()), ";") {
			sql := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
			buf.Reset()
			runSQL(conn, sql)
		}
		prompt()
	}
	if rest := strings.TrimSpace(buf.String()); rest != "" {
		runSQL(conn, strings.TrimSuffix(rest, ";"))
	}
}

// traceOn prints each statement's span tree after its result (-trace).
var traceOn bool

func runSQL(conn *calcite.Connection, sql string) {
	if sql == "" {
		return
	}
	res, err := conn.Query(sql)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return
	}
	printTable(res)
	if traceOn {
		if traces := conn.LastTraces(1); len(traces) > 0 && traces[0].Spans != nil {
			t := traces[0]
			fmt.Printf("-- trace %d (fingerprint %s): plan=%s optimize=%s exec=%s\n",
				t.ID, t.Fingerprint,
				time.Duration(t.PlanNs).Round(time.Microsecond),
				time.Duration(t.OptimizeNs).Round(time.Microsecond),
				time.Duration(t.ExecNs).Round(time.Microsecond))
			fmt.Print(obs.RenderSpans(t.Spans))
		}
	}
}

func printTable(res *calcite.Result) {
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(res.Rows))
	for ri, row := range res.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := types.FormatValue(v)
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	line := func(parts []string) {
		for i, p := range parts {
			fmt.Printf("| %-*s ", widths[i], p)
		}
		fmt.Println("|")
	}
	sep := ""
	for _, w := range widths {
		sep += "+" + strings.Repeat("-", w+2)
	}
	sep += "+"
	fmt.Println(sep)
	line(res.Columns)
	fmt.Println(sep)
	for _, row := range cells {
		line(row)
	}
	fmt.Println(sep)
	fmt.Printf("%d row(s)\n", len(res.Rows))
}

func loadDemo(conn *calcite.Connection) {
	conn.AddTable("emps", calcite.Columns{
		{Name: "empid", Type: calcite.BigIntType},
		{Name: "name", Type: calcite.VarcharType},
		{Name: "deptno", Type: calcite.BigIntType},
		{Name: "sal", Type: calcite.DoubleType},
	}, [][]any{
		{int64(100), "Bill", int64(10), 10000.0},
		{int64(110), "Theodore", int64(10), 11500.0},
		{int64(150), "Sebastian", int64(10), 7000.0},
		{int64(200), "Eric", int64(20), 8000.0},
	})
	conn.AddTable("depts", calcite.Columns{
		{Name: "deptno", Type: calcite.BigIntType},
		{Name: "dname", Type: calcite.VarcharType},
	}, [][]any{
		{int64(10), "Sales"}, {int64(20), "Marketing"},
	})
}

func isTerminal() bool {
	info, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}
