// Command loadgen drives a live avaticasrv with a closed-loop multi-worker
// query mix (point lookups, 5-way star joins, spilling paginated sorts,
// window aggregations) and reports latency quantiles, error counts and the
// server's plan-cache hit rate, exiting nonzero when the run violates its
// bounds — the CI serving-load gate.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8765 -workers 16 -duration 20s \
//	        [-tenants acme,globex] [-maxerrrate 0] [-maxp99 2s] [-minhitrate 0.9]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"calcite/internal/loadgen"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8765", "avatica server address")
	workers := flag.Int("workers", 16, "closed-loop worker count")
	duration := flag.Duration("duration", 20*time.Second, "run length")
	tenants := flag.String("tenants", "", "comma-separated tenant names, round-robin across workers (empty = untenanted)")
	seed := flag.Int64("seed", 0, "random seed (0 = derived from workers)")
	maxErrRate := flag.Float64("maxerrrate", 0, "fail when errors/requests exceeds this")
	maxP99 := flag.Duration("maxp99", 0, "fail when overall p99 exceeds this (0 = no bound)")
	minHitRate := flag.Float64("minhitrate", 0, "fail when the plan-cache hit rate is below this (0 = not checked)")
	flag.Parse()

	cfg := loadgen.Config{
		Addr:         *addr,
		Workers:      *workers,
		Duration:     *duration,
		Seed:         *seed,
		MaxErrorRate: *maxErrRate,
		MaxP99:       *maxP99,
		MinHitRate:   *minHitRate,
	}
	if *tenants != "" {
		cfg.Tenants = strings.Split(*tenants, ",")
	}
	res, err := loadgen.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	res.Render(os.Stdout)
	if !res.Passed() {
		os.Exit(1)
	}
}
