// Command avaticasrv serves a framework instance over the Avatica-style
// JSON/HTTP protocol (the remote-driver deployment of Table 1), with the
// observability surface mounted alongside the wire protocol:
//
//	/metrics        Prometheus text exposition
//	/debug/queries  recent + slow query traces as JSON
//	/debug/plans    plan-quality reports: est/actual/q-error per operator
//	/healthz        load-balancer probe
//	/debug/pprof/   Go profiling endpoints (only with -pprof)
//
// Usage:
//
//	avaticasrv -addr 127.0.0.1:8765 [-csv dir] [-mem 64MB] [-querymem 16MB]
//	           [-tenantmem 8MB] [-maxconcurrent 16] [-maxqueue 64]
//	           [-queuetimeout 5s] [-slowquery 250ms] [-pprof] [-demorows 50000]
//
// Then POST {"sql": "SELECT ..."} to /execute. Requests carrying an
// X-Calcite-Tenant header execute against that tenant's memory budget
// (-tenantmem); saturation beyond -maxconcurrent running plus -maxqueue
// queued requests answers 503 SERVER_BUSY. SIGINT/SIGTERM drain in-flight
// requests for up to 10 seconds before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"calcite"
	"calcite/internal/adapter/csvfile"
	"calcite/internal/avatica"
	"calcite/internal/memory"
)

// drainTimeout bounds graceful shutdown: in-flight requests get this long
// to finish after the listener closes.
const drainTimeout = 10 * time.Second

func main() {
	addr := flag.String("addr", "127.0.0.1:8765", "listen address")
	csvDir := flag.String("csv", "", "directory of CSV files to serve as schema 'csv'")
	mem := flag.String("mem", "", "execution-memory budget, e.g. 64MB (empty = unlimited); operators spill beyond it")
	queryMem := flag.String("querymem", "", "per-query memory cap, e.g. 16MB (empty = bounded by -mem only)")
	slowQuery := flag.Duration("slowquery", 0, "slow-query threshold, e.g. 250ms (0 = disabled); slow queries are logged as JSON lines on stderr and kept in /debug/queries")
	tenantMem := flag.String("tenantmem", "", "per-tenant memory budget, e.g. 8MB (empty = tenants bounded by -mem only)")
	maxConcurrent := flag.Int("maxconcurrent", 0, "concurrent query executions (0 = 2 x parallelism)")
	maxQueue := flag.Int("maxqueue", 0, "admission wait-queue depth (0 = 4 x maxconcurrent, -1 = no queue)")
	queueTimeout := flag.Duration("queuetimeout", 0, "max wait for an execution slot (0 = 5s)")
	pprofOn := flag.Bool("pprof", false, "mount Go profiling endpoints under /debug/pprof/")
	demoRows := flag.Int("demorows", 2, "rows in the built-in demo table (large values make governed queries spill); also sizes the star-schema fact table")
	fbOn := flag.Bool("feedback", true, "harvest actual row counts from each execution and re-plan drifted statements with corrected cardinalities (see /debug/plans)")
	flag.Parse()

	conn, err := calcite.OpenChecked()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *mem != "" {
		n, err := memory.ParseBytes(*mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		conn.SetMemoryLimit(n)
	}
	if *queryMem != "" {
		n, err := memory.ParseBytes(*queryMem)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		conn.SetQueryMemoryLimit(n)
	}
	if *slowQuery > 0 {
		conn.SetSlowQueryThreshold(*slowQuery, os.Stderr)
	}
	conn.EnableFeedback(*fbOn)
	if *csvDir != "" {
		a, err := csvfile.Load("csv", *csvDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		conn.RegisterAdapter(a)
	}
	loadDemo(conn, *demoRows)

	srv := avatica.NewServer(conn.Framework)
	srv.EnablePprof = *pprofOn
	srv.MaxConcurrent = *maxConcurrent
	srv.MaxQueue = *maxQueue
	srv.QueueTimeout = *queueTimeout
	if *tenantMem != "" {
		n, err := memory.ParseBytes(*tenantMem)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		srv.TenantMemoryLimit = n
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("avatica server listening on", bound)
	fmt.Println(`try: curl -d '{"sql":"SELECT * FROM demo"}' http://` + bound + `/execute`)
	fmt.Println("     curl http://" + bound + "/metrics | head")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Println("received", got, "- draining")
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "shutdown:", err)
		os.Exit(1)
	}
}

// loadDemo registers the demo table with n generated rows. The value
// columns are deterministic but non-trivial, so aggregates, sorts and
// self-joins over a large demo table exercise the spill paths under a
// small -querymem budget.
func loadDemo(conn *calcite.Connection, n int) {
	if n < 2 {
		n = 2
	}
	rows := make([][]any, n)
	msgs := [...]string{"hello", "world", "lorem", "ipsum", "dolor", "sit", "amet"}
	for i := 0; i < n; i++ {
		h := uint64(i) * 0x9e3779b97f4a7c15
		rows[i] = []any{
			int64(i + 1),
			int64(h % 97),
			float64(h%100000) / 100,
			msgs[i%len(msgs)],
		}
	}
	conn.AddTable("demo", calcite.Columns{
		{Name: "id", Type: calcite.BigIntType},
		{Name: "grp", Type: calcite.BigIntType},
		{Name: "val", Type: calcite.DoubleType},
		{Name: "msg", Type: calcite.VarcharType},
	}, rows)
	loadStarSchema(conn, n)
}

// loadStarSchema registers a small star schema — a fact table with four
// dimension tables — sized from the demo row count. The load generator's
// star-join query class drives it; the data is deterministic so repeated
// runs are comparable.
func loadStarSchema(conn *calcite.Connection, factRows int) {
	const dimRows = 50
	dims := [...]string{"d_cust", "d_prod", "d_geo", "d_time"}
	for di, name := range dims {
		rows := make([][]any, dimRows)
		for i := 0; i < dimRows; i++ {
			rows[i] = []any{int64(i), fmt.Sprintf("%s-%03d", name, i), int64((i * (di + 3)) % 17)}
		}
		conn.AddTable(name, calcite.Columns{
			{Name: "id", Type: calcite.BigIntType},
			{Name: "label", Type: calcite.VarcharType},
			{Name: "attr", Type: calcite.BigIntType},
		}, rows)
	}
	rows := make([][]any, factRows)
	for i := 0; i < factRows; i++ {
		h := uint64(i)*0x9e3779b97f4a7c15 + 0x1234
		rows[i] = []any{
			int64(i),
			int64(h % dimRows),
			int64((h >> 8) % dimRows),
			int64((h >> 16) % dimRows),
			int64((h >> 24) % dimRows),
			float64(h%100000) / 100,
		}
	}
	conn.AddTable("fact", calcite.Columns{
		{Name: "id", Type: calcite.BigIntType},
		{Name: "cust_id", Type: calcite.BigIntType},
		{Name: "prod_id", Type: calcite.BigIntType},
		{Name: "geo_id", Type: calcite.BigIntType},
		{Name: "time_id", Type: calcite.BigIntType},
		{Name: "amount", Type: calcite.DoubleType},
	}, rows)
}
