// Command avaticasrv serves a framework instance over the Avatica-style
// JSON/HTTP protocol (the remote-driver deployment of Table 1).
//
// Usage:
//
//	avaticasrv -addr 127.0.0.1:8765 [-csv dir]
//
// Then POST {"sql": "SELECT ..."} to /execute.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"calcite"
	"calcite/internal/adapter/csvfile"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8765", "listen address")
	csvDir := flag.String("csv", "", "directory of CSV files to serve as schema 'csv'")
	flag.Parse()

	conn := calcite.Open()
	if *csvDir != "" {
		a, err := csvfile.Load("csv", *csvDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		conn.RegisterAdapter(a)
	}
	conn.AddTable("demo", calcite.Columns{
		{Name: "id", Type: calcite.BigIntType},
		{Name: "msg", Type: calcite.VarcharType},
	}, [][]any{{int64(1), "hello"}, {int64(2), "world"}})

	bound, stop, err := conn.Serve(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("avatica server listening on", bound)
	fmt.Println(`try: curl -d '{"sql":"SELECT * FROM demo"}' http://` + bound + `/execute`)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	stop()
}
