// Command paperrepro regenerates every table and figure of the paper
// "Apache Calcite: A Foundational Framework for Optimized Query Processing
// Over Heterogeneous Data Sources" (SIGMOD 2018) from this reproduction.
//
// Usage:
//
//	paperrepro            # everything
//	paperrepro -fig 2     # one figure
//	paperrepro -table 1   # one table
//	paperrepro -sec 7.2   # one worked section example
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"calcite"
	"calcite/internal/adapter/cassandra"
	"calcite/internal/adapter/mongo"
	"calcite/internal/adapter/splunk"
	"calcite/internal/adapter/sqldb"
	"calcite/internal/adapter/streamtab"
	"calcite/internal/builder"
	"calcite/internal/core"
	"calcite/internal/meta"
	"calcite/internal/rel"
	"calcite/internal/rel2sql"
	"calcite/internal/rex"
	"calcite/internal/stream"
	"calcite/internal/types"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate one figure (1-4)")
	table := flag.Int("table", 0, "regenerate one table (1-2)")
	sec := flag.String("sec", "", "regenerate one section example (3, 7.1, 7.2, 7.3)")
	flag.Parse()

	all := *fig == 0 && *table == 0 && *sec == ""
	run := func(cond bool, f func() error) {
		if !cond && !all {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "paperrepro: %v\n", err)
			os.Exit(1)
		}
	}
	run(*fig == 1, figure1)
	run(*fig == 2, figure2)
	run(*fig == 3, figure3)
	run(*fig == 4, figure4)
	run(*table == 1, table1)
	run(*table == 2, table2)
	run(*sec == "3", section3)
	run(*sec == "7.1", section71)
	run(*sec == "7.2", section72)
	run(*sec == "7.3", section73)
}

func header(title string) {
	fmt.Println()
	fmt.Println("================================================================")
	fmt.Println(title)
	fmt.Println("================================================================")
}

// figure1 walks a query through every component of the architecture.
func figure1() error {
	header("Figure 1 — architecture: one query through every component")
	conn := calcite.Open()
	conn.AddTable("emps", calcite.Columns{
		{Name: "empid", Type: calcite.BigIntType},
		{Name: "deptno", Type: calcite.BigIntType},
		{Name: "sal", Type: calcite.DoubleType},
	}, [][]any{
		{int64(1), int64(10), 1000.0},
		{int64(2), int64(20), 2000.0},
	})
	sql := "SELECT deptno, SUM(sal) AS s FROM emps WHERE sal > 500 GROUP BY deptno"
	fmt.Println("SQL (parser+validator):", strings.TrimSpace(sql))
	logical, optimized, err := conn.Plan(sql)
	if err != nil {
		return err
	}
	fmt.Println("\nLogical plan (sql-to-rel):")
	fmt.Print(rel.Explain(logical))
	fmt.Println("\nOptimized plan (rules + metadata + cost-based planner):")
	fmt.Print(rel.Explain(optimized))
	res, err := conn.Query(sql)
	if err != nil {
		return err
	}
	fmt.Println("\nExecuted (enumerable convention):", res.Rows)
	return nil
}

// fig2Setup builds the Figure 2 scenario.
func fig2Setup() (*calcite.Connection, *sqldb.Server, *splunk.Engine, error) {
	mysql := sqldb.NewServer("mysql")
	mysql.CreateTable("products",
		types.Row(
			types.Field{Name: "id", Type: types.BigInt},
			types.Field{Name: "name", Type: types.Varchar},
		),
		[][]any{
			{int64(1), "Widget"}, {int64(2), "Gadget"}, {int64(3), "Gizmo"},
		})
	engine := splunk.NewEngine()
	engine.AddIndex(&splunk.Index{
		Name: "orders",
		Fields: []types.Field{
			{Name: "rowtime", Type: types.Timestamp},
			{Name: "product_id", Type: types.BigInt},
			{Name: "units", Type: types.BigInt},
		},
		Events: [][]any{
			{int64(1000), int64(1), int64(10)},
			{int64(2000), int64(2), int64(30)},
			{int64(3000), int64(3), int64(40)},
			{int64(4000), int64(1), int64(50)},
		},
	})
	engine.SetLookup(func(tbl, key string, value any) ([]string, [][]any, error) {
		rows, err := mysql.Lookup(tbl, key, value)
		return []string{"id", "name"}, rows, err
	})
	conn := calcite.Open()
	jdbc, err := sqldb.New("mysql", mysql, rel2sql.MySQL)
	if err != nil {
		return nil, nil, nil, err
	}
	conn.RegisterAdapter(jdbc)
	conn.RegisterAdapter(splunk.New("splunk", engine))
	return conn, mysql, engine, nil
}

// figure2 reproduces the query optimization process: initial plan, the
// filter pushed into splunk, and the join pushed into the splunk engine.
func figure2() error {
	header("Figure 2 — cross-backend optimization (Splunk ⋈ MySQL)")
	conn, mysql, engine, err := fig2Setup()
	if err != nil {
		return err
	}
	sql := `SELECT p.name, o.units
	        FROM splunk.orders o JOIN mysql.products p ON o.product_id = p.id
	        WHERE o.units > 25`
	fmt.Println("Query:", strings.Join(strings.Fields(sql), " "))
	logical, optimized, err := conn.Plan(sql)
	if err != nil {
		return err
	}
	fmt.Println("\nInitial plan (scans in splunk / jdbc-mysql conventions, logical join):")
	fmt.Print(rel.Explain(logical))
	fmt.Println("\nFinal plan (filter pushed into splunk; join pushed into the splunk")
	fmt.Println("engine as a lookup join through the splunk-to-enumerable converter):")
	fmt.Print(rel.Explain(optimized))
	res, err := conn.Query(sql)
	if err != nil {
		return err
	}
	fmt.Println("\nRows:", res.Rows)
	fmt.Println("SPL sent to Splunk:   ", engine.LastQuery())
	fmt.Println("SQL sent to MySQL:    ", mysql.LastQuery())
	return nil
}

// figure3 exercises the adapter design: model → schema factory → schema →
// tables → rules, for every adapter.
func figure3() error {
	header("Figure 3 — adapter architecture conformance")
	conn, _, _, err := fig2Setup()
	if err != nil {
		return err
	}
	// Add the remaining adapters.
	cass := cassandra.NewStore()
	cass.CreateTable(cassandra.TableDef{
		Name: "events",
		Fields: []types.Field{
			{Name: "tenant", Type: types.Varchar},
			{Name: "ts", Type: types.BigInt},
			{Name: "payload", Type: types.Varchar},
		},
		PartitionKeys:  []int{0},
		ClusteringKeys: []int{1},
	}, [][]any{{"acme", int64(3), "c"}, {"acme", int64(1), "a"}, {"other", int64(2), "b"}})
	conn.RegisterAdapter(cassandra.New("cass", cass))

	docs := mongo.NewStore()
	docs.AddCollection("zips", []map[string]any{
		{"city": "PARIS", "pop": float64(100)},
	})
	conn.RegisterAdapter(mongo.New("mongo", docs))

	for _, name := range []string{"mysql", "splunk", "cass", "mongo"} {
		sub, ok := conn.Framework.Catalog.SubSchema(name)
		if !ok {
			return fmt.Errorf("schema %s missing", name)
		}
		fmt.Printf("adapter %-8s tables=%v\n", name, sub.TableNames())
	}
	fmt.Println("Each adapter contributed: schema factory → schema → tables, plus")
	fmt.Println("planner rules and a convention converter (see Table 2 output).")
	return nil
}

// figure4 reproduces FilterIntoJoinRule's before/after plans on the paper's
// sales ⋈ products query.
func figure4() error {
	header("Figure 4 — FilterIntoJoinRule application")
	conn := calcite.Open()
	conn.AddTable("sales", calcite.Columns{
		{Name: "productId", Type: calcite.BigIntType},
		{Name: "discount", Type: calcite.DoubleType},
	}, [][]any{
		{int64(1), 0.1}, {int64(2), nil}, {int64(1), 0.2}, {int64(3), nil},
	})
	conn.AddTable("products", calcite.Columns{
		{Name: "productId", Type: calcite.BigIntType},
		{Name: "name", Type: calcite.VarcharType},
	}, [][]any{
		{int64(1), "Widget"}, {int64(2), "Gadget"}, {int64(3), "Gizmo"},
	})
	sql := `SELECT products.name, COUNT(*)
	        FROM sales JOIN products USING (productId)
	        WHERE sales.discount IS NOT NULL
	        GROUP BY products.name
	        ORDER BY COUNT(*) DESC`
	logical, err := conn.Framework.ParseAndConvert(sql)
	if err != nil {
		return err
	}
	fmt.Println("Before (filter above the join, as in Figure 4a):")
	fmt.Print(rel.Explain(logical))
	optimized, err := conn.Framework.Optimize(logical)
	if err != nil {
		return err
	}
	fmt.Println("\nAfter (filter pushed below the join, Figure 4b; then implemented):")
	fmt.Print(rel.Explain(optimized))
	res, err := conn.Query(sql)
	if err != nil {
		return err
	}
	fmt.Println("\nRows:", res.Rows)
	return nil
}

// table1 reproduces the embedded-systems matrix as runnable embedding modes.
func table1() error {
	header("Table 1 — component-usage matrix across embedding modes")
	type mode struct {
		name      string
		jdbc      bool
		parser    bool
		algebra   bool
		execution string
	}
	modes := []mode{
		{"Full stack (cmd/calcite shell)", false, true, true, "Enumerable"},
		{"Remote driver (Avatica server+client)", true, true, true, "Enumerable"},
		{"Own parser, algebra only (RelBuilder, §3 Pig)", false, false, true, "Enumerable"},
		{"Streaming SQL (STREAM + TUMBLE, §7.2)", false, true, true, "Enumerable"},
		{"OLAP cubes (lattices, Kylin-style)", false, true, true, "Enumerable + tiles"},
		{"Federated (Splunk ⋈ MySQL, Figure 2)", false, true, true, "Splunk + remote SQL"},
		{"SQL pushdown only (JDBC adapter)", false, true, true, "Remote SQL server"},
		{"Document views (§7.1 Mongo)", false, true, true, "Mongo find + Enumerable"},
		{"Wide-column (Cassandra rules, §6)", false, true, true, "CQL + Enumerable"},
		{"Language-integrated (LINQ4J analogue, §7.4)", false, false, false, "linq pipelines"},
		{"Heuristic planner embedding (Hep)", false, true, true, "Enumerable"},
		{"Geospatial SQL (§7.3)", false, true, true, "Enumerable"},
	}
	check := func(b bool) string {
		if b {
			return "  ✓  "
		}
		return "     "
	}
	fmt.Printf("%-48s %-5s %-7s %-7s %s\n", "Embedding mode", "JDBC", "Parser", "Algebra", "Execution engine")
	for _, m := range modes {
		fmt.Printf("%-48s %-5s %-7s %-7s %s\n", m.name, check(m.jdbc), check(m.parser), check(m.algebra), m.execution)
	}
	return nil
}

// table2 shows, per adapter, the target-language text generated for one
// pushed-down query.
func table2() error {
	header("Table 2 — adapters and generated target languages")
	conn, mysql, engine, err := fig2Setup()
	if err != nil {
		return err
	}
	// Cassandra.
	cass := cassandra.NewStore()
	cass.CreateTable(cassandra.TableDef{
		Name: "events",
		Fields: []types.Field{
			{Name: "tenant", Type: types.Varchar},
			{Name: "ts", Type: types.BigInt},
			{Name: "payload", Type: types.Varchar},
		},
		PartitionKeys:  []int{0},
		ClusteringKeys: []int{1},
	}, [][]any{{"acme", int64(1), "a"}, {"acme", int64(2), "b"}})
	conn.RegisterAdapter(cassandra.New("cass", cass))
	// Mongo.
	docs := mongo.NewStore()
	docs.AddCollection("zips", []map[string]any{
		{"city": "PARIS", "pop": float64(100)},
		{"city": "LYON", "pop": float64(50)},
	})
	conn.RegisterAdapter(mongo.New("mongo", docs))

	queries := []struct {
		adapter string
		sql     string
		last    func() string
	}{
		{"JDBC (MySQL dialect)", "SELECT name FROM mysql.products WHERE id > 1", mysql.LastQuery},
		{"Splunk (SPL)", "SELECT units FROM splunk.orders WHERE units > 25", engine.LastQuery},
		{"Cassandra (CQL)", "SELECT ts, payload FROM cass.events WHERE tenant = 'acme' ORDER BY ts", cass.LastQuery},
		{"MongoDB (JSON)", "SELECT * FROM mongo.zips WHERE CAST(_MAP['pop'] AS DOUBLE) > 60", docs.LastQuery},
	}
	for _, q := range queries {
		if _, err := conn.Query(q.sql); err != nil {
			return fmt.Errorf("%s: %v", q.adapter, err)
		}
		fmt.Printf("%-22s %s\n", q.adapter+":", q.last())
	}
	fmt.Printf("%-22s %s\n", "Pig-style (builder):", "see -sec 3 (operator trees built directly)")
	fmt.Printf("%-22s %s\n", "Streams:", "see -sec 7.2")
	return nil
}

// section3 runs the paper's Pig / expression-builder example.
func section3() error {
	header("§3 — expression builder (the paper's Pig example)")
	conn := calcite.Open()
	conn.AddTable("employee_data", calcite.Columns{
		{Name: "deptno", Type: calcite.BigIntType},
		{Name: "sal", Type: calcite.DoubleType},
	}, [][]any{
		{int64(10), 1000.0}, {int64(10), 2000.0}, {int64(20), 1500.0},
	})
	node, err := conn.Builder().
		Scan("employee_data").
		Aggregate(builder.GroupKey("deptno"),
			builder.Count(false, "c"),
			builder.Sum(false, "s", "sal")).
		Build()
	if err != nil {
		return err
	}
	fmt.Println("Built plan:")
	fmt.Print(rel.Explain(node))
	res, err := conn.ExecutePlan(node)
	if err != nil {
		return err
	}
	fmt.Println("Rows:", res.Rows)
	return nil
}

// section71 runs the paper's zips view over the mongo adapter.
func section71() error {
	header("§7.1 — semi-structured data (MongoDB zips view)")
	docs := mongo.NewStore()
	docs.AddCollection("zips", []map[string]any{
		{"city": "AMSTERDAM", "pop": float64(820000), "loc": []any{4.9, 52.37}},
		{"city": "ROTTERDAM", "pop": float64(620000), "loc": []any{4.47, 51.92}},
	})
	conn := calcite.Open()
	conn.RegisterAdapter(mongo.New("mongo_raw", docs))
	if _, err := conn.Exec(`CREATE VIEW zips AS
		SELECT CAST(_MAP['city'] AS VARCHAR(20)) AS city,
		       CAST(_MAP['loc'][0] AS DOUBLE) AS longitude,
		       CAST(_MAP['loc'][1] AS DOUBLE) AS latitude
		FROM mongo_raw.zips`); err != nil {
		return err
	}
	res, err := conn.Query("SELECT city, latitude FROM zips WHERE longitude > 4.5 ORDER BY city")
	if err != nil {
		return err
	}
	fmt.Println("Rows:", res.Rows)
	fmt.Println("Mongo query:", docs.LastQuery())
	return nil
}

// section72 runs the paper's four streaming queries.
func section72() error {
	header("§7.2 — streaming (STREAM, windows, stream joins)")
	orders := streamtab.NewTable("orders", types.Row(
		types.Field{Name: "rowtime", Type: types.Timestamp},
		types.Field{Name: "productId", Type: types.BigInt},
		types.Field{Name: "units", Type: types.BigInt},
	), 0)
	hour := int64(3600 * 1000)
	for i := int64(0); i < 8; i++ {
		orders.Append([]any{i * hour / 2, i%3 + 1, 10 * (i + 1)})
	}
	shipments := streamtab.NewTable("shipments", types.Row(
		types.Field{Name: "rowtime", Type: types.Timestamp},
		types.Field{Name: "orderId", Type: types.BigInt},
	), 0)
	shipments.Append([]any{hour / 4, int64(1)}, []any{hour, int64(2)})

	conn := calcite.Open()
	sa := streamtab.New("streams")
	sa.AddTable(orders)
	sa.AddTable(shipments)
	conn.RegisterAdapter(sa)

	q1 := "SELECT STREAM rowtime, productId, units FROM streams.orders WHERE units > 25"
	res, err := conn.Query(q1)
	if err != nil {
		return err
	}
	fmt.Println("STREAM filter:", len(res.Rows), "rows")

	q2 := `SELECT STREAM rowtime, productId, units,
	       SUM(units) OVER (ORDER BY rowtime PARTITION BY productId
	                        RANGE INTERVAL '1' HOUR PRECEDING) AS unitsLastHour
	       FROM streams.orders`
	res, err = conn.Query(q2)
	if err != nil {
		return err
	}
	fmt.Println("Sliding window over rowtime:", len(res.Rows), "rows; last:", res.Rows[len(res.Rows)-1])

	q3 := `SELECT STREAM TUMBLE_END(rowtime, INTERVAL '1' HOUR) AS rowtime,
	              productId, COUNT(*) AS c, SUM(units) AS units
	       FROM streams.orders
	       GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR), productId`
	res, err = conn.Query(q3)
	if err != nil {
		return err
	}
	fmt.Println("TUMBLE group window:", len(res.Rows), "window rows")

	// Hopping and session windows via the stream package.
	cur, _ := orders.StreamScan()
	events, err := stream.EventsFromCursor(cur, 0)
	if err != nil {
		return err
	}
	hop, err := stream.Hop(events, hour/2, hour, nil, []rex.AggCall{rex.NewAggCall(rex.AggCount, nil, false, "c")})
	if err != nil {
		return err
	}
	fmt.Println("HOP windows:", len(hop))
	ses, err := stream.Session(events, hour, []int{1}, []rex.AggCall{rex.NewAggCall(rex.AggCount, nil, false, "c")})
	if err != nil {
		return err
	}
	fmt.Println("SESSION windows:", len(ses))
	return nil
}

// section73 runs the paper's Amsterdam-in-country geospatial query.
func section73() error {
	header("§7.3 — geospatial (ST_Contains country lookup)")
	conn := calcite.Open()
	conn.AddTable("country", calcite.Columns{
		{Name: "name", Type: calcite.VarcharType},
		{Name: "boundary", Type: calcite.VarcharType},
	}, [][]any{
		{"Netherlands", "POLYGON ((3.3 50.7, 7.2 50.7, 7.2 53.6, 3.3 53.6, 3.3 50.7))"},
		{"Belgium", "POLYGON ((2.5 49.5, 6.4 49.5, 6.4 51.5, 2.5 51.5, 2.5 49.5))"},
	})
	res, err := conn.Query(`SELECT name FROM (
		SELECT name,
		       ST_GeomFromText('POLYGON ((4.82 52.43, 4.97 52.43, 4.97 52.33, 4.82 52.33, 4.82 52.43))') AS "Amsterdam",
		       ST_GeomFromText(boundary) AS "Country"
		FROM country
	) t WHERE ST_Contains("Country", "Amsterdam")`)
	if err != nil {
		return err
	}
	fmt.Println("Country containing Amsterdam:", res.Rows)
	return nil
}

// quiet unused-import guards for optional paths.
var (
	_ = core.VolcanoCostBased
	_ = meta.NewQuery
)
