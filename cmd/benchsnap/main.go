// benchsnap captures and compares execution-benchmark snapshots.
//
// A snapshot is a normalized JSON file (BENCH_<n>.json) mapping benchmark
// name → {ns/op, B/op, allocs/op}, produced either from a live `go test
// -bench` run or from a saved raw benchmark log. Snapshots are committed to
// the repository so performance changes travel with the code that caused
// them, and CI replays the suite against the latest committed snapshot to
// catch regressions.
//
// Usage:
//
//	benchsnap -out BENCH_1.json                 # run suite, write snapshot
//	benchsnap -in raw.txt -out BENCH_0.json     # normalize a saved log
//	benchsnap -baseline BENCH_1.json            # run suite, gate vs snapshot
//	benchsnap -baseline latest                  # gate vs highest BENCH_<n>.json
//
// The gate fails (exit 1) when any BenchmarkExec_* entry regresses by more
// than -threshold (default 1.5x) in ns/op or allocs/op versus the baseline.
// Entries below -floor ns/op (default 1ms) are reported but never gated:
// micro-scale entries drown in scheduler noise at smoke iteration counts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one normalized benchmark entry.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Snapshot is the on-disk BENCH_<n>.json shape.
type Snapshot struct {
	Benchmarks map[string]Result `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkExec_RowVsBatch_Filter/Batch-8   40  8155886 ns/op  6434462 B/op  41540 allocs/op
//
// The -<GOMAXPROCS> suffix and the B/op and allocs/op fields are optional
// (the latter appear only under -benchmem).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parseRaw(raw string) map[string]Result {
	out := make(map[string]Result)
	for _, line := range strings.Split(raw, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		r := Result{}
		r.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[3], 10, 64)
		}
		if m[4] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		out[m[1]] = r
	}
	return out
}

// runBench executes the benchmark suite and returns its raw output.
func runBench(pkg, pattern, benchtime string) (string, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", pattern, "-benchtime", benchtime, "-benchmem", pkg)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go test -bench failed: %w", err)
	}
	return string(out), nil
}

// latestSnapshot returns the BENCH_<n>.json with the highest n in dir.
func latestSnapshot(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, m := range matches {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(m), "BENCH_%d.json", &n); err == nil && n > bestN {
			best, bestN = m, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_<n>.json snapshot found in %s", dir)
	}
	return best, nil
}

func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// compare gates fresh results against the baseline. It returns the number
// of gated regressions; floorNs exempts micro-scale entries from gating.
func compare(baseline, fresh map[string]Result, gate *regexp.Regexp, threshold, floorNs float64) int {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		if !gate.MatchString(name) {
			continue
		}
		base := baseline[name]
		cur, ok := fresh[name]
		if !ok {
			fmt.Printf("MISSING  %-55s (in baseline, not in fresh run)\n", name)
			regressions++
			continue
		}
		nsRatio := ratio(cur.NsPerOp, base.NsPerOp)
		allocRatio := ratio(float64(cur.AllocsPerOp), float64(base.AllocsPerOp))
		status := "ok      "
		gated := base.NsPerOp >= floorNs
		bad := nsRatio > threshold || (allocRatio > threshold && base.AllocsPerOp >= 64)
		switch {
		case bad && gated:
			status = "REGRESS "
			regressions++
		case bad:
			status = "noise?  " // below the floor: report, don't gate
		}
		fmt.Printf("%s %-55s ns/op %10.0f -> %10.0f (%.2fx)  allocs %8d -> %8d (%.2fx)\n",
			status, name, base.NsPerOp, cur.NsPerOp, nsRatio,
			base.AllocsPerOp, cur.AllocsPerOp, allocRatio)
	}
	return regressions
}

func ratio(cur, base float64) float64 {
	if base <= 0 {
		if cur <= 0 {
			return 1
		}
		return cur
	}
	return cur / base
}

func main() {
	var (
		pkg       = flag.String("pkg", ".", "package to benchmark")
		pattern   = flag.String("bench", "BenchmarkExec_", "benchmark regexp passed to -bench")
		benchtime = flag.String("benchtime", "1x", "benchtime for live runs")
		in        = flag.String("in", "", "parse this saved raw benchmark log instead of running")
		out       = flag.String("out", "", "write the normalized snapshot to this JSON file")
		baseline  = flag.String("baseline", "", "gate against this snapshot ('latest' = highest committed BENCH_<n>.json)")
		gateExpr  = flag.String("gate", `^BenchmarkExec_`, "regexp of entries the regression gate applies to")
		threshold = flag.Float64("threshold", 1.5, "fail when ns/op or allocs/op exceeds baseline by this factor")
		floorMs   = flag.Float64("floor-ms", 1.0, "entries under this baseline ns/op (in ms) are reported but not gated")
	)
	flag.Parse()

	var raw string
	if *in != "" {
		data, err := os.ReadFile(*in)
		if err != nil {
			fatal(err)
		}
		raw = string(data)
	} else {
		var err error
		fmt.Fprintf(os.Stderr, "benchsnap: running go test -bench %q -benchtime %s %s\n", *pattern, *benchtime, *pkg)
		raw, err = runBench(*pkg, *pattern, *benchtime)
		if err != nil {
			fatal(err)
		}
	}
	results := parseRaw(raw)
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found"))
	}

	if *out != "" {
		data, err := json.MarshalIndent(&Snapshot{Benchmarks: results}, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchsnap: wrote %d entries to %s\n", len(results), *out)
	}

	if *baseline != "" {
		path := *baseline
		if path == "latest" {
			var err error
			if path, err = latestSnapshot("."); err != nil {
				fatal(err)
			}
		}
		snap, err := loadSnapshot(path)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("benchsnap: gating against %s (threshold %.2fx)\n", path, *threshold)
		if n := compare(snap.Benchmarks, results, regexp.MustCompile(*gateExpr), *threshold, *floorMs*1e6); n > 0 {
			fmt.Fprintf(os.Stderr, "benchsnap: %d regression(s) vs %s\n", n, path)
			os.Exit(1)
		}
		fmt.Println("benchsnap: no regressions")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsnap:", err)
	os.Exit(1)
}
