// Quickstart: create tables, run SQL, inspect plans — the five-minute tour
// of the framework's public API.
package main

import (
	"fmt"
	"log"

	"calcite"
)

func main() {
	conn := calcite.Open()

	conn.AddTable("emps", calcite.Columns{
		{Name: "empid", Type: calcite.BigIntType},
		{Name: "name", Type: calcite.VarcharType},
		{Name: "deptno", Type: calcite.BigIntType},
		{Name: "sal", Type: calcite.DoubleType},
	}, [][]any{
		{int64(100), "Bill", int64(10), 10000.0},
		{int64(110), "Theodore", int64(10), 11500.0},
		{int64(150), "Sebastian", int64(10), 7000.0},
		{int64(200), "Eric", int64(20), 8000.0},
	})
	conn.AddTable("depts", calcite.Columns{
		{Name: "deptno", Type: calcite.BigIntType},
		{Name: "dname", Type: calcite.VarcharType},
	}, [][]any{
		{int64(10), "Sales"}, {int64(20), "Marketing"},
	})

	// Plain query.
	res, err := conn.Query("SELECT name, sal FROM emps WHERE sal > 7500 ORDER BY sal DESC")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("High earners:")
	for _, row := range res.Rows {
		fmt.Printf("  %-10v %v\n", row[0], row[1])
	}

	// Join + aggregate (the optimizer pushes the filter below the join —
	// Figure 4's FilterIntoJoinRule).
	res, err = conn.Query(`
		SELECT d.dname, COUNT(*) AS headcount, AVG(e.sal) AS avg_sal
		FROM emps e JOIN depts d ON e.deptno = d.deptno
		WHERE e.sal > 7000
		GROUP BY d.dname
		ORDER BY headcount DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDepartment stats:")
	for _, row := range res.Rows {
		fmt.Printf("  %-12v headcount=%v avg=%v\n", row[0], row[1], row[2])
	}

	// DDL + DML.
	mustExec(conn, "CREATE TABLE notes (id BIGINT, body VARCHAR(100))")
	mustExec(conn, "INSERT INTO notes VALUES (1, 'first'), (2, 'second')")
	res, err = conn.Query("SELECT body FROM notes WHERE id = ?", int64(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nParameterized lookup:", res.Rows[0][0])

	// Inspect the optimizer's output. Every plan line carries the metadata
	// providers' estimates (rows=…, cost=…).
	plan, err := conn.Explain("SELECT dname FROM depts WHERE deptno = 10")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nOptimized plan:")
	fmt.Print(plan)

	// ANALYZE TABLE collects statistics — row counts, per-column null
	// counts, min/max, distinct-value sketches and equi-depth histograms —
	// that the cost-based optimizer uses for selectivity and join-order
	// decisions. Compare the estimates before and after.
	const joinSQL = `
		SELECT e.name FROM emps e
		JOIN depts d ON e.deptno = d.deptno
		JOIN notes n ON e.empid = n.id
		WHERE e.sal > 9000`
	plan, err = conn.Explain(joinSQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n3-way join before ANALYZE (textbook estimates):")
	fmt.Print(plan)

	for _, t := range []string{"emps", "depts", "notes"} {
		mustExec(conn, "ANALYZE TABLE "+t)
	}
	plan, err = conn.Explain(joinSQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSame join after ANALYZE (histogram/NDV estimates):")
	fmt.Print(plan)
}

func mustExec(conn *calcite.Connection, sql string) {
	if _, err := conn.Exec(sql); err != nil {
		log.Fatal(err)
	}
}
