// OLAP: the §6 materialized-view machinery — substitution-based rewriting
// (CREATE MATERIALIZED VIEW) and the lattice/tile algorithm (Kylin-style
// cubes over a star schema), with plans showing the rewrite.
package main

import (
	"fmt"
	"log"

	"calcite"
	"calcite/internal/mv"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/types"
)

func main() {
	conn := calcite.Open()

	// A sales fact table (dimensions pre-denormalized, as Kylin cubes do).
	var rows [][]any
	regions := []string{"EU", "US", "APAC"}
	products := []string{"Widget", "Gadget", "Gizmo", "Doohickey"}
	for i := 0; i < 5000; i++ {
		rows = append(rows, []any{
			regions[i%len(regions)],
			products[i%len(products)],
			int64(2020 + i%4),
			float64(10 + i%90),
		})
	}
	fact := conn.AddTable("sales", calcite.Columns{
		{Name: "region", Type: calcite.VarcharType},
		{Name: "product", Type: calcite.VarcharType},
		{Name: "year", Type: calcite.BigIntType},
		{Name: "revenue", Type: calcite.DoubleType},
	}, rows)

	// Collect statistics first: the fact table's histograms and distinct
	// counts feed every cost decision below (EXPLAIN lines show rows=/cost=
	// estimates derived from them).
	_, err := conn.Exec("ANALYZE TABLE sales")
	must(err)
	plan, err := conn.Explain("SELECT product, SUM(revenue) AS total FROM sales WHERE year >= 2022 GROUP BY product")
	must(err)
	fmt.Println("Analyzed rollup plan (histogram-driven estimates):")
	fmt.Print(plan)

	// --- substitution-based materialized view ---
	_, err = conn.Exec(`CREATE MATERIALIZED VIEW rev_by_region AS
		SELECT region, SUM(revenue) AS total, COUNT(*) AS cnt
		FROM sales GROUP BY region`)
	must(err)
	plan, err = conn.Explain("SELECT region, SUM(revenue) AS total, COUNT(*) AS cnt FROM sales GROUP BY region")
	must(err)
	fmt.Println("\nExact-match query rewritten to scan the materialization:")
	fmt.Print(plan)

	// --- lattice with tiles ---
	measures := []rex.AggCall{
		rex.NewAggCall(rex.AggSum, []int{3}, false, "revenue"),
		rex.NewAggCall(rex.AggCount, nil, false, "cnt"),
	}
	tileRPY, err := mv.BuildTile(fact, []string{"sales"}, []int{0, 1, 2}, measures, "tile_region_product_year")
	must(err)
	tileR, err := mv.BuildTile(fact, []string{"sales"}, []int{0}, measures, "tile_region")
	must(err)
	conn.RegisterLattice(&mv.Lattice{
		Name:     "sales_cube",
		Fact:     schema.Table(fact),
		FactName: []string{"sales"},
		Tiles:    []*mv.Tile{tileR, tileRPY}, // smallest first
	})

	// A rollup not matching any view exactly: answered from a tile.
	sql := "SELECT product, SUM(revenue) AS total FROM sales GROUP BY product ORDER BY total DESC"
	plan, err = conn.Explain(sql)
	must(err)
	fmt.Println("\nRollup answered from the lattice tile:")
	fmt.Print(plan)
	res, err := conn.Query(sql)
	must(err)
	fmt.Println("\nRevenue by product:")
	for _, row := range res.Rows {
		fmt.Printf("  %-10v %v\n", row[0], types.FormatValue(row[1]))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
