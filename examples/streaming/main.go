// Streaming: the §7.2 extensions — the STREAM directive, sliding windows
// over rowtime, tumbling group windows, a stream-to-stream join with an
// implicit window, and hopping/session windows via the stream package.
package main

import (
	"fmt"
	"log"

	"calcite"
	"calcite/internal/adapter/streamtab"
	"calcite/internal/rex"
	"calcite/internal/stream"
	"calcite/internal/types"
)

func main() {
	hour := int64(3600 * 1000)

	orders := streamtab.NewTable("orders", types.Row(
		types.Field{Name: "rowtime", Type: types.Timestamp},
		types.Field{Name: "orderId", Type: types.BigInt},
		types.Field{Name: "productId", Type: types.BigInt},
		types.Field{Name: "units", Type: types.BigInt},
	), 0)
	for i := int64(0); i < 10; i++ {
		if err := orders.Append([]any{i * hour / 3, i, i%3 + 1, 10 * (i + 1)}); err != nil {
			log.Fatal(err)
		}
	}
	orders.SetWatermark(2 * hour) // events after this are "incoming"

	shipments := streamtab.NewTable("shipments", types.Row(
		types.Field{Name: "rowtime", Type: types.Timestamp},
		types.Field{Name: "orderId", Type: types.BigInt},
	), 0)
	shipments.Append(
		[]any{hour / 4, int64(0)},
		[]any{hour / 2, int64(1)},
		[]any{2 * hour, int64(3)},
	)

	conn := calcite.Open()
	adapter := streamtab.New("s")
	adapter.AddTable(orders)
	adapter.AddTable(shipments)
	conn.RegisterAdapter(adapter)

	// 1. STREAM vs history: without STREAM, only rows before the watermark.
	hist, err := conn.Query("SELECT COUNT(*) FROM s.orders")
	must(err)
	strm, err := conn.Query("SELECT STREAM rowtime, orderId FROM s.orders WHERE units > 25")
	must(err)
	fmt.Printf("history rows=%v, incoming stream rows (units>25)=%d\n", hist.Rows[0][0], len(strm.Rows))

	// 2. Sliding window (the paper's unitsLastHour query).
	res, err := conn.Query(`
		SELECT STREAM rowtime, productId, units,
		       SUM(units) OVER (ORDER BY rowtime PARTITION BY productId
		                        RANGE INTERVAL '1' HOUR PRECEDING) AS unitsLastHour
		FROM s.orders`)
	must(err)
	fmt.Println("\nSliding-window sums (last 3):")
	for _, row := range res.Rows[len(res.Rows)-3:] {
		fmt.Printf("  t=%v product=%v units=%v lastHour=%v\n", row[0], row[1], row[2], row[3])
	}

	// 3. Tumbling group window.
	res, err = conn.Query(`
		SELECT STREAM TUMBLE_END(rowtime, INTERVAL '1' HOUR) AS wend,
		       productId, COUNT(*) AS c, SUM(units) AS units
		FROM s.orders
		GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR), productId`)
	must(err)
	fmt.Printf("\nTumbling windows: %d result rows\n", len(res.Rows))

	// 4. Stream-to-stream join with an implicit window on both rowtimes.
	res, err = conn.Query(`
		SELECT STREAM o.rowtime, o.orderId, s2.rowtime AS shipTime
		FROM s.orders o
		JOIN s.shipments s2 ON o.orderId = s2.orderId
		AND s2.rowtime BETWEEN o.rowtime AND o.rowtime + INTERVAL '1' HOUR`)
	must(err)
	fmt.Printf("\nStream-stream join matches: %d\n", len(res.Rows))

	// 5. Hopping and session windows (stream package API).
	cur, err := orders.StreamScan()
	must(err)
	events, err := stream.EventsFromCursor(cur, 0)
	must(err)
	count := []rex.AggCall{rex.NewAggCall(rex.AggCount, nil, false, "c")}
	hop, err := stream.Hop(events, hour/2, hour, nil, count)
	must(err)
	fmt.Printf("\nHopping windows (slide 30m, size 1h): %d windows\n", len(hop))
	ses, err := stream.Session(events, 25*60*1000, []int{2}, count)
	must(err)
	fmt.Printf("Session windows (25m gap, per product): %d sessions\n", len(ses))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
