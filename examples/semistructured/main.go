// Semi-structured: the §7.1 workflow — a MongoDB-like document store exposed
// as _MAP tables, typed relational views over the documents (the paper's
// zips example), and joins between document data and relational data.
package main

import (
	"fmt"
	"log"

	"calcite"
	"calcite/internal/adapter/mongo"
)

func main() {
	store := mongo.NewStore()
	store.AddCollection("zips", []map[string]any{
		{"city": "AMSTERDAM", "state": "NH", "pop": float64(821752), "loc": []any{4.9041, 52.3676}},
		{"city": "ROTTERDAM", "state": "ZH", "pop": float64(623652), "loc": []any{4.4777, 51.9244}},
		{"city": "UTRECHT", "state": "UT", "pop": float64(345080), "loc": []any{5.1214, 52.0907}},
		{"city": "EINDHOVEN", "state": "NB", "pop": float64(229126), "loc": []any{5.4697, 51.4416}},
	})

	conn := calcite.Open()
	conn.RegisterAdapter(mongo.New("mongo_raw", store))

	// Raw access: one _MAP column per document, [] item operator.
	res, err := conn.Query(`
		SELECT CAST(_MAP['city'] AS VARCHAR(20)) AS city
		FROM mongo_raw.zips
		WHERE CAST(_MAP['pop'] AS DOUBLE) > 400000`)
	must(err)
	fmt.Println("Big cities (raw _MAP access):")
	for _, row := range res.Rows {
		fmt.Println(" ", row[0])
	}
	fmt.Println("Pushed-down Mongo query:", store.LastQuery())

	// The paper's typed view.
	_, err = conn.Exec(`CREATE VIEW zips AS
		SELECT CAST(_MAP['city'] AS VARCHAR(20)) AS city,
		       CAST(_MAP['loc'][0] AS DOUBLE) AS longitude,
		       CAST(_MAP['loc'][1] AS DOUBLE) AS latitude,
		       CAST(_MAP['pop'] AS DOUBLE) AS pop
		FROM mongo_raw.zips`)
	must(err)

	// Relational table joined against the document view.
	conn.AddTable("provinces", calcite.Columns{
		{Name: "city", Type: calcite.VarcharType},
		{Name: "province", Type: calcite.VarcharType},
	}, [][]any{
		{"AMSTERDAM", "Noord-Holland"},
		{"ROTTERDAM", "Zuid-Holland"},
		{"UTRECHT", "Utrecht"},
	})

	res, err = conn.Query(`
		SELECT z.city, p.province, z.pop
		FROM zips z JOIN provinces p ON z.city = p.city
		WHERE z.latitude > 52
		ORDER BY z.pop DESC`)
	must(err)
	fmt.Println("\nNorthern cities with provinces (view ⋈ relational):")
	for _, row := range res.Rows {
		fmt.Printf("  %-10v %-14v pop=%v\n", row[0], row[1], row[2])
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
