// Federation: the paper's Figure 2 scenario as a runnable program — a
// Products table in a MySQL-like SQL server joined with an Orders event
// index in a Splunk-like engine. The optimizer pushes the WHERE clause into
// Splunk and turns the join into an in-engine lookup join.
package main

import (
	"fmt"
	"log"

	"calcite"
	"calcite/internal/adapter/splunk"
	"calcite/internal/adapter/sqldb"
	"calcite/internal/rel"
	"calcite/internal/rel2sql"
	"calcite/internal/types"
)

func main() {
	// The "MySQL" backend: reachable only through SQL strings.
	mysql := sqldb.NewServer("mysql")
	mysql.CreateTable("products",
		types.Row(
			types.Field{Name: "id", Type: types.BigInt},
			types.Field{Name: "name", Type: types.Varchar},
			types.Field{Name: "price", Type: types.Double},
		),
		[][]any{
			{int64(1), "Widget", 9.99},
			{int64(2), "Gadget", 19.99},
			{int64(3), "Gizmo", 29.99},
		})

	// The "Splunk" backend: an event store with an SPL-like language.
	engine := splunk.NewEngine()
	engine.AddIndex(&splunk.Index{
		Name: "orders",
		Fields: []types.Field{
			{Name: "rowtime", Type: types.Timestamp},
			{Name: "product_id", Type: types.BigInt},
			{Name: "units", Type: types.BigInt},
		},
		Events: [][]any{
			{int64(1000), int64(1), int64(10)},
			{int64(2000), int64(2), int64(30)},
			{int64(3000), int64(3), int64(40)},
			{int64(4000), int64(1), int64(50)},
			{int64(5000), int64(2), int64(5)},
		},
	})
	// Wire the ODBC-style lookup from Splunk into MySQL (Figure 2).
	engine.SetLookup(func(table, key string, value any) ([]string, [][]any, error) {
		rows, err := mysql.Lookup(table, key, value)
		return []string{"id", "name", "price"}, rows, err
	})

	conn := calcite.Open()
	jdbc, err := sqldb.New("mysql", mysql, rel2sql.MySQL)
	if err != nil {
		log.Fatal(err)
	}
	conn.RegisterAdapter(jdbc)
	conn.RegisterAdapter(splunk.New("splunk", engine))

	sql := `SELECT p.name, o.units
	        FROM splunk.orders o
	        JOIN mysql.products p ON o.product_id = p.id
	        WHERE o.units > 25`

	logical, optimized, err := conn.Plan(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Logical plan (join not yet placed):")
	fmt.Print(rel.Explain(logical))
	fmt.Println("\nOptimized plan (filter + join pushed into Splunk):")
	fmt.Print(rel.Explain(optimized))

	res, err := conn.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nResults:")
	for _, row := range res.Rows {
		fmt.Printf("  %-8v units=%v\n", row[0], row[1])
	}
	fmt.Println("\nSPL sent to Splunk:", engine.LastQuery())
	fmt.Println("SQL sent to MySQL: ", mysql.LastQuery())
}
