// Geospatial: the §7.3 extensions — the GEOMETRY type, WKT parsing and the
// OpenGIS-style ST_* functions, including the paper's "which country
// contains Amsterdam" query.
package main

import (
	"fmt"
	"log"

	"calcite"
)

func main() {
	conn := calcite.Open()
	conn.AddTable("country", calcite.Columns{
		{Name: "name", Type: calcite.VarcharType},
		{Name: "boundary", Type: calcite.VarcharType},
	}, [][]any{
		{"Netherlands", "POLYGON ((3.3 50.7, 7.2 50.7, 7.2 53.6, 3.3 53.6, 3.3 50.7))"},
		{"Belgium", "POLYGON ((2.5 49.5, 6.4 49.5, 6.4 51.5, 2.5 51.5, 2.5 49.5))"},
		{"Luxembourg", "POLYGON ((5.7 49.4, 6.5 49.4, 6.5 50.2, 5.7 50.2, 5.7 49.4))"},
	})

	// The paper's query, verbatim shape.
	res, err := conn.Query(`SELECT name FROM (
		SELECT name,
		       ST_GeomFromText('POLYGON ((4.82 52.43, 4.97 52.43, 4.97 52.33, 4.82 52.33, 4.82 52.43))') AS "Amsterdam",
		       ST_GeomFromText(boundary) AS "Country"
		FROM country
	) t WHERE ST_Contains("Country", "Amsterdam")`)
	must(err)
	fmt.Println("Country containing Amsterdam:", res.Rows[0][0])

	// Distances from a point to each country boundary.
	res, err = conn.Query(`
		SELECT name, ST_DISTANCE(ST_POINT(4.35, 50.85), ST_GeomFromText(boundary)) AS d
		FROM country ORDER BY d`)
	must(err)
	fmt.Println("\nDistance from Brussels to each boundary (0 = inside):")
	for _, row := range res.Rows {
		fmt.Printf("  %-12v %v\n", row[0], row[1])
	}

	// Areas and intersection tests.
	res, err = conn.Query(`
		SELECT name,
		       ST_AREA(ST_GeomFromText(boundary)) AS area,
		       ST_INTERSECTS(ST_GeomFromText(boundary),
		                     ST_GeomFromText('LINESTRING (4 49, 6 54)')) AS crossed
		FROM country ORDER BY area DESC`)
	must(err)
	fmt.Println("\nAreas and whether a 4E49N-6E54N flight path crosses:")
	for _, row := range res.Rows {
		fmt.Printf("  %-12v area=%-8v crossed=%v\n", row[0], row[1], row[2])
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
