// Pig-style builder: §3's expression-builder interface. Systems with their
// own query languages (the paper shows an Apache Pig script) construct
// operator trees directly and hand them to the optimizer — no SQL involved.
package main

import (
	"fmt"
	"log"

	"calcite"
	"calcite/internal/builder"
	"calcite/internal/rel"
)

func main() {
	conn := calcite.Open()
	conn.AddTable("employee_data", calcite.Columns{
		{Name: "deptno", Type: calcite.BigIntType},
		{Name: "sal", Type: calcite.DoubleType},
	}, [][]any{
		{int64(10), 1000.0}, {int64(10), 2000.0},
		{int64(20), 1500.0}, {int64(20), 500.0}, {int64(30), 800.0},
	})

	// The paper's Pig script:
	//   emp = LOAD 'employee_data' AS (deptno, sal);
	//   emp_by_dept = GROUP emp by (deptno);
	//   emp_agg = FOREACH emp_by_dept GENERATE GROUP as deptno,
	//             COUNT(emp.sal) AS c, SUM(emp.sal) as s;
	node, err := conn.Builder().
		Scan("employee_data").
		Aggregate(builder.GroupKey("deptno"),
			builder.Count(false, "c", "sal"),
			builder.Sum(false, "s", "sal")).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Plan built without SQL:")
	fmt.Print(rel.Explain(node))

	res, err := conn.ExecutePlan(node)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndump emp_agg;")
	for _, row := range res.Rows {
		fmt.Printf("  (%v, %v, %v)\n", row[0], row[1], row[2])
	}

	// A longer pipeline: filter + join + sort, still SQL-free.
	conn.AddTable("dept_names", calcite.Columns{
		{Name: "deptno", Type: calcite.BigIntType},
		{Name: "dname", Type: calcite.VarcharType},
	}, [][]any{
		{int64(10), "Sales"}, {int64(20), "Marketing"}, {int64(30), "Ops"},
	})
	b := conn.Builder()
	b = b.Scan("employee_data")
	b = b.Filter(b.Greater(b.Field("sal"), b.Literal(700.0)))
	b = b.Scan("dept_names")
	node, err = b.
		JoinOn(rel.InnerJoin, "deptno", "deptno").
		Sort("-sal").
		Limit(0, 3).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err = conn.ExecutePlan(node)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTop 3 salaries with departments:")
	for _, row := range res.Rows {
		fmt.Printf("  %v\n", row)
	}
}
