package calcite_test

// Differential spill suite: every query must produce identical results with
// the memory limit forced below the working-set size (spill paths: external
// sort, Grace hash join, spillable aggregation) and with memory unlimited,
// at parallelism 1 and 4. Plus the acceptance scenarios of the memory
// governor: a 5-way join + aggregation over data larger than the budget,
// and the clean "memory budget exceeded" failure with spilling disabled.

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"calcite"
)

// spillBudget is far below the diffConn working set (the sales table alone
// materializes at a few hundred KiB), so sorts, joins and aggregates over
// it must spill.
const spillBudget = 64 << 10

// TestSpillAndInMemoryAgree runs the shared SQL corpus limited vs unlimited
// at parallelism 1 and 4. ORDER BY queries must match in order (the suite's
// orderings are total); everything else as multisets — operator output
// order without ORDER BY is plan-dependent, and the Grace join/partitioned
// aggregation legitimately emit partition by partition.
func TestSpillAndInMemoryAgree(t *testing.T) {
	for _, par := range []int{1, 4} {
		ref := diffConn()
		ref.SetParallelism(par)
		limited := diffConn()
		limited.SetParallelism(par)
		limited.SetMemoryLimit(spillBudget)
		for _, q := range diffQueries {
			rr, rerr := ref.Query(q.sql, q.params...)
			lr, lerr := limited.Query(q.sql, q.params...)
			if (rerr == nil) != (lerr == nil) {
				t.Errorf("p=%d %s\n  unlimited err=%v limited err=%v", par, q.sql, rerr, lerr)
				continue
			}
			if rerr != nil {
				continue
			}
			a, b := renderRows(lr.Rows), renderRows(rr.Rows)
			if !strings.Contains(strings.ToUpper(q.sql), "ORDER BY") {
				sort.Strings(a)
				sort.Strings(b)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("p=%d (budget=%d) %s\n  limited:   %v\n  unlimited: %v", par, spillBudget, q.sql, a, b)
			}
		}
	}
}

// TestSpillSmallBatches crosses the spill paths with the batchSize=3
// boundary configuration.
func TestSpillSmallBatches(t *testing.T) {
	ref := diffConn()
	ref.SetParallelism(1)
	ref.SetBatchSize(3)
	limited := diffConn()
	limited.SetParallelism(1)
	limited.SetBatchSize(3)
	limited.SetMemoryLimit(spillBudget)
	for _, q := range diffQueries {
		rr, rerr := ref.Query(q.sql, q.params...)
		lr, lerr := limited.Query(q.sql, q.params...)
		if (rerr == nil) != (lerr == nil) {
			t.Errorf("%s\n  unlimited err=%v limited err=%v", q.sql, rerr, lerr)
			continue
		}
		if rerr != nil {
			continue
		}
		a, b := renderRows(lr.Rows), renderRows(rr.Rows)
		if !strings.Contains(strings.ToUpper(q.sql), "ORDER BY") {
			sort.Strings(a)
			sort.Strings(b)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s (batchSize=3, budget=%d)\n  limited:   %v\n  unlimited: %v", q.sql, spillBudget, a, b)
		}
	}
}

// memStarConn builds the acceptance-criterion catalog: a fact table joined to
// four dimensions, with a working set well above the spill budgets used
// below. Sums use quarter-unit floats (exactly representable), so spilled
// partial-sum reassociation is bit-exact.
func memStarConn() *calcite.Connection {
	conn := calcite.Open()
	const nFact = 20000
	fact := make([][]any, nFact)
	for i := range fact {
		fact[i] = []any{
			int64(i),
			int64(i % 97), // custkey
			int64(i % 53), // prodkey
			int64(i % 11), // storekey
			int64(i % 7),  // promokey
			float64(i%40) / 4.0,
			int64(i % 5),
		}
	}
	conn.AddTable("fact", calcite.Columns{
		{Name: "id", Type: calcite.BigIntType},
		{Name: "custkey", Type: calcite.BigIntType},
		{Name: "prodkey", Type: calcite.BigIntType},
		{Name: "storekey", Type: calcite.BigIntType},
		{Name: "promokey", Type: calcite.BigIntType},
		{Name: "amount", Type: calcite.DoubleType},
		{Name: "qty", Type: calcite.BigIntType},
	}, fact)
	dim := func(name, keyCol, valCol string, n int) {
		rows := make([][]any, n)
		for i := range rows {
			rows[i] = []any{int64(i), fmt.Sprintf("%s-%d", name, i)}
		}
		conn.AddTable(name, calcite.Columns{
			{Name: keyCol, Type: calcite.BigIntType},
			{Name: valCol, Type: calcite.VarcharType},
		}, rows)
	}
	dim("customers", "custkey", "custname", 97)
	dim("products", "prodkey", "prodname", 53)
	dim("stores", "storekey", "storename", 11)
	dim("promos", "promokey", "promoname", 7)
	return conn
}

// memStarQuery is the acceptance query: a 5-way join plus aggregation plus a
// total-order sort.
const memStarQuery = `
SELECT s.storename, p.prodname, COUNT(*) AS cnt, SUM(f.amount) AS amt, SUM(f.qty) AS q
FROM fact f
JOIN customers c ON f.custkey = c.custkey
JOIN products p ON f.prodkey = p.prodkey
JOIN stores s ON f.storekey = s.storekey
JOIN promos pr ON f.promokey = pr.promokey
GROUP BY s.storename, p.prodname
ORDER BY s.storename, p.prodname`

// TestFiveWayJoinLargerThanBudget is the acceptance criterion: the 5-way
// join + aggregation over data larger than the configured budget completes
// with results identical to the unlimited-memory run, at parallelism 1
// and 4.
func TestFiveWayJoinLargerThanBudget(t *testing.T) {
	ref := memStarConn()
	ref.SetParallelism(1)
	want, err := ref.Query(memStarQuery)
	if err != nil {
		t.Fatalf("unlimited run: %v", err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("unlimited run returned no rows")
	}
	for _, par := range []int{1, 4} {
		limited := memStarConn()
		limited.SetParallelism(par)
		limited.SetMemoryLimit(256 << 10) // ~1/10 of the fact working set
		got, err := limited.Query(memStarQuery)
		if err != nil {
			t.Fatalf("p=%d limited run: %v", par, err)
		}
		if !reflect.DeepEqual(renderRows(got.Rows), renderRows(want.Rows)) {
			t.Errorf("p=%d: limited results differ from unlimited (rows %d vs %d)",
				par, len(got.Rows), len(want.Rows))
		}
	}
}

// TestFiveWayJoinActuallySpills asserts the budgeted star query exercises
// the spill machinery (not just fits anyway), via EXPLAIN ANALYZE counters.
func TestFiveWayJoinActuallySpills(t *testing.T) {
	limited := memStarConn()
	limited.SetParallelism(1)
	limited.SetMemoryLimit(256 << 10)
	res, err := limited.Query("EXPLAIN ANALYZE " + memStarQuery)
	if err != nil {
		t.Fatalf("EXPLAIN ANALYZE: %v", err)
	}
	if !strings.Contains(res.Plan, "spilled=") || !strings.Contains(res.Plan, "run stats") {
		t.Fatalf("EXPLAIN ANALYZE did not report run stats:\n%s", res.Plan)
	}
	spilled := false
	for _, line := range strings.Split(res.Plan, "\n") {
		if strings.Contains(line, "spill-events=") {
			spilled = true
		}
	}
	if !spilled {
		t.Fatalf("no operator reported spilling under a 256KiB budget:\n%s", res.Plan)
	}
}

// TestBudgetExceededWithoutSpillFailsCleanly is the admission-control
// acceptance criterion: with spilling disabled, exceeding the budget is a
// clean "memory budget exceeded" error, not an OOM.
func TestBudgetExceededWithoutSpillFailsCleanly(t *testing.T) {
	for _, par := range []int{1, 4} {
		conn := memStarConn()
		conn.SetParallelism(par)
		conn.SetMemoryLimit(128 << 10)
		conn.EnableSpill(false)
		_, err := conn.Query(memStarQuery)
		if err == nil {
			t.Fatalf("p=%d: query larger than budget succeeded with spilling disabled", par)
		}
		if !strings.Contains(err.Error(), "memory budget exceeded") {
			t.Fatalf("p=%d: error %q does not mention the memory budget", par, err)
		}
	}
}

// TestQueryMemoryLimitIndependentOfPool: a per-query cap applies even when
// no framework-wide limit is set.
func TestQueryMemoryLimitIndependentOfPool(t *testing.T) {
	conn := memStarConn()
	conn.SetParallelism(1)
	conn.SetQueryMemoryLimit(256 << 10)
	got, err := conn.Query(memStarQuery)
	if err != nil {
		t.Fatalf("per-query limited run: %v", err)
	}
	ref := memStarConn()
	ref.SetParallelism(1)
	want, err := ref.Query(memStarQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(renderRows(got.Rows), renderRows(want.Rows)) {
		t.Error("per-query limited results differ from unlimited")
	}
}

// TestRetainedAggregateLargerThanBudgetCompletes is the regression test for
// the flush/re-add recursion: value-retaining aggregates whose per-row
// charge can never be granted (rows bigger than the whole query budget)
// must still complete via flush-then-proceed, not recurse forever.
func TestRetainedAggregateLargerThanBudgetCompletes(t *testing.T) {
	conn := calcite.Open()
	big := strings.Repeat("x", 4096)
	rows := make([][]any, 64)
	for i := range rows {
		rows[i] = []any{int64(i % 4), fmt.Sprintf("%s-%d", big, i)}
	}
	conn.AddTable("blobs", calcite.Columns{
		{Name: "grp", Type: calcite.BigIntType},
		{Name: "v", Type: calcite.VarcharType},
	}, rows)
	conn.SetParallelism(1)
	conn.SetQueryMemoryLimit(1 << 10) // 1KiB: below a single row's charge
	res, err := conn.Query("SELECT grp, COUNT(DISTINCT v) FROM blobs GROUP BY grp ORDER BY grp")
	if err != nil {
		t.Fatalf("tiny-budget distinct aggregate: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[1] != int64(16) {
			t.Fatalf("distinct count = %v, want 16 (row %v)", row[1], row)
		}
	}
}

// TestManySpillRunsCascade is the regression test for the merge fan-in:
// a budget small enough to cut hundreds of runs must cascade-merge them
// instead of opening every run at once, and still produce the exact sorted
// order.
func TestManySpillRunsCascade(t *testing.T) {
	conn := calcite.Open()
	n := 20000
	rows := make([][]any, n)
	for i := range rows {
		rows[i] = []any{int64((i * 7919) % n), int64(i)}
	}
	conn.AddTable("shuf", calcite.Columns{
		{Name: "k", Type: calcite.BigIntType},
		{Name: "pos", Type: calcite.BigIntType},
	}, rows)
	conn.SetParallelism(1)
	conn.SetQueryMemoryLimit(8 << 10) // ~60-row runs → hundreds of runs
	res, err := conn.Query("SELECT k FROM shuf ORDER BY k")
	if err != nil {
		t.Fatalf("many-run sort: %v", err)
	}
	if len(res.Rows) != n {
		t.Fatalf("rows = %d, want %d", len(res.Rows), n)
	}
	for i, row := range res.Rows {
		if row[0] != int64(i) {
			t.Fatalf("row %d = %v, want %d", i, row[0], i)
		}
	}
}
