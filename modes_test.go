package calcite_test

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"calcite"
)

// diffConn builds the differential-test catalog: the tables used by the SQL
// suite in calcite_test.go (emps/depts style data) plus the bench fixture's
// sales/products shape, with NULLs, strings, floats and duplicate keys.
func diffConn() *calcite.Connection {
	conn := calcite.Open()
	conn.AddTable("emps", calcite.Columns{
		{Name: "empid", Type: calcite.BigIntType},
		{Name: "deptno", Type: calcite.BigIntType},
		{Name: "name", Type: calcite.VarcharType},
		{Name: "sal", Type: calcite.DoubleType},
	}, [][]any{
		{int64(1), int64(10), "Bill", 100.0},
		{int64(2), int64(20), "Eric", 200.0},
		{int64(3), int64(10), "Sebastian", 150.0},
		{int64(4), int64(30), "Hongze", nil},
		{int64(5), nil, "Nomad", 50.0},
	})
	conn.AddTable("depts", calcite.Columns{
		{Name: "deptno", Type: calcite.BigIntType},
		{Name: "dname", Type: calcite.VarcharType},
	}, [][]any{
		{int64(10), "Eng"},
		{int64(20), "Sales"},
		{int64(40), "Empty"},
	})
	sales := make([][]any, 3000)
	for i := range sales {
		var discount any
		if i%3 == 0 {
			discount = float64(i%10) / 100
		}
		sales[i] = []any{int64(i % 50), discount}
	}
	conn.AddTable("sales", calcite.Columns{
		{Name: "productId", Type: calcite.BigIntType},
		{Name: "discount", Type: calcite.DoubleType},
	}, sales)
	products := make([][]any, 50)
	for i := range products {
		products[i] = []any{int64(i), fmt.Sprintf("product-%d", i)}
	}
	conn.AddTable("products", calcite.Columns{
		{Name: "productId", Type: calcite.BigIntType},
		{Name: "name", Type: calcite.VarcharType},
	}, products)
	return conn
}

// diffQueries is the SQL suite both execution modes must agree on. It covers
// every operator with a batch implementation (scan, filter, project, hash
// join, aggregate, sort/limit) and the row-fallback operators (set ops,
// window, values, nested-loop join) behind the shims.
var diffQueries = []struct {
	sql    string
	params []any
}{
	{sql: "SELECT * FROM emps"},
	{sql: "SELECT name FROM emps WHERE empid = 1"},
	{sql: "SELECT deptno, SUM(sal) AS s FROM emps WHERE sal > 50 GROUP BY deptno ORDER BY deptno"},
	{sql: "SELECT empid + 10, sal * 2, UPPER(name) FROM emps WHERE sal IS NOT NULL"},
	{sql: "SELECT name FROM emps WHERE name LIKE '%i%' ORDER BY name"},
	{sql: "SELECT name, CASE WHEN sal >= 150 THEN 'high' WHEN sal IS NULL THEN 'unknown' ELSE 'low' END FROM emps"},
	{sql: "SELECT COALESCE(sal, 0), CAST(empid AS VARCHAR) FROM emps"},
	{sql: "SELECT empid FROM emps WHERE deptno IN (10, 30)"},
	{sql: "SELECT empid FROM emps WHERE sal BETWEEN 75 AND 175"},
	{sql: "SELECT e.name, d.dname FROM emps e JOIN depts d ON e.deptno = d.deptno ORDER BY e.name"},
	{sql: "SELECT e.name, d.dname FROM emps e LEFT JOIN depts d ON e.deptno = d.deptno ORDER BY e.name"},
	{sql: "SELECT e.name, d.dname FROM emps e RIGHT JOIN depts d ON e.deptno = d.deptno"},
	{sql: "SELECT e.name, d.dname FROM emps e FULL JOIN depts d ON e.deptno = d.deptno"},
	{sql: "SELECT COUNT(*), COUNT(sal), AVG(sal), MIN(name), MAX(sal) FROM emps"},
	{sql: "SELECT deptno, COUNT(*) AS c FROM emps GROUP BY deptno HAVING COUNT(*) > 1"},
	{sql: "SELECT DISTINCT deptno FROM emps WHERE deptno IS NOT NULL ORDER BY deptno"},
	{sql: "SELECT name FROM emps ORDER BY sal DESC LIMIT 2 OFFSET 1"},
	{sql: "SELECT empid FROM emps WHERE deptno = 10 UNION SELECT deptno FROM depts"},
	{sql: "SELECT deptno FROM emps INTERSECT SELECT deptno FROM depts"},
	{sql: "SELECT deptno FROM depts EXCEPT SELECT deptno FROM emps"},
	{sql: "SELECT dname FROM (SELECT deptno, dname FROM depts WHERE deptno < 30) t WHERE t.deptno > 5"},
	{sql: "SELECT products.name, COUNT(*) FROM sales JOIN products USING (productId) WHERE sales.discount IS NOT NULL GROUP BY products.name ORDER BY COUNT(*) DESC, products.name"},
	{sql: "SELECT productId, COUNT(*) OVER (PARTITION BY productId ORDER BY productId ROWS 10 PRECEDING) AS c FROM sales WHERE productId < 5"},
	{sql: "SELECT productId, COUNT(discount) OVER (PARTITION BY productId ORDER BY discount DESC ROWS BETWEEN 3 PRECEDING AND 1 PRECEDING) AS c FROM sales WHERE productId < 6"},
	{sql: "SELECT productId, ROW_NUMBER() OVER (PARTITION BY productId ORDER BY discount DESC) AS rn, LAG(discount) OVER (PARTITION BY productId ORDER BY discount DESC) AS lg FROM sales WHERE productId < 4"},
	{sql: "SELECT empid, name FROM emps WHERE sal > ? ORDER BY empid", params: []any{120.0}},
	{sql: "SELECT name FROM emps WHERE empid = ? AND deptno = ?", params: []any{int64(3), int64(10)}},
}

// TestRowAndBatchModesAgree runs every suite query through the vectorized
// batch path and the row-at-a-time path and requires identical results.
func TestRowAndBatchModesAgree(t *testing.T) {
	batchConn := diffConn()
	rowConn := diffConn()
	rowConn.ForceRowMode(true)
	for _, q := range diffQueries {
		br, berr := batchConn.Query(q.sql, q.params...)
		rr, rerr := rowConn.Query(q.sql, q.params...)
		if (berr == nil) != (rerr == nil) {
			t.Errorf("%s\n  batch err=%v row err=%v", q.sql, berr, rerr)
			continue
		}
		if berr != nil {
			t.Errorf("%s\n  both modes failed: %v", q.sql, berr)
			continue
		}
		if !reflect.DeepEqual(br.Columns, rr.Columns) {
			t.Errorf("%s\n  columns differ: %v vs %v", q.sql, br.Columns, rr.Columns)
			continue
		}
		bRows := renderRows(br.Rows)
		rRows := renderRows(rr.Rows)
		// ORDER BY output must match in order; unordered results as multisets.
		if !strings.Contains(strings.ToUpper(q.sql), "ORDER BY") {
			sort.Strings(bRows)
			sort.Strings(rRows)
		}
		if !reflect.DeepEqual(bRows, rRows) {
			t.Errorf("%s\n  batch: %v\n  row:   %v", q.sql, bRows, rRows)
		}
	}
}

// TestBatchModeSmallBatches shakes out batch-boundary bugs by forcing a tiny
// batch size (every operator sees many partial batches).
func TestBatchModeSmallBatches(t *testing.T) {
	tiny := diffConn()
	tiny.SetBatchSize(3)
	ref := diffConn()
	ref.ForceRowMode(true)
	for _, q := range diffQueries {
		tr, terr := tiny.Query(q.sql, q.params...)
		rr, rerr := ref.Query(q.sql, q.params...)
		if (terr == nil) != (rerr == nil) {
			t.Errorf("%s\n  tiny-batch err=%v row err=%v", q.sql, terr, rerr)
			continue
		}
		if terr != nil {
			continue
		}
		a, b := renderRows(tr.Rows), renderRows(rr.Rows)
		if !strings.Contains(strings.ToUpper(q.sql), "ORDER BY") {
			sort.Strings(a)
			sort.Strings(b)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s (batchSize=3)\n  tiny: %v\n  row:  %v", q.sql, a, b)
		}
	}
}

// TestParallelModesAgree runs the SQL suite at parallelism 1, 4 and 8 and
// requires rows identical to the serial engine IN THE SAME ORDER — the
// parallel engine's determinism contract (Seq-ordered gathers, first-seen
// group ordering, position-tagged merge sorts). The suite contains no
// COLLECT calls and only binary-exact float aggregations, so the documented
// value-level caveats do not apply here.
func TestParallelModesAgree(t *testing.T) {
	serial := diffConn()
	serial.SetParallelism(1)
	// Serial baselines computed once; each parallelism level compares
	// against the cached rows.
	type baseline struct {
		rows []string
		err  error
	}
	baselines := make([]baseline, len(diffQueries))
	for i, q := range diffQueries {
		sr, serr := serial.Query(q.sql, q.params...)
		if serr != nil {
			baselines[i] = baseline{err: serr}
			continue
		}
		baselines[i] = baseline{rows: renderRows(sr.Rows)}
	}
	for _, p := range []int{1, 4, 8} {
		par := diffConn()
		par.SetParallelism(p)
		for i, q := range diffQueries {
			pr, perr := par.Query(q.sql, q.params...)
			if (perr == nil) != (baselines[i].err == nil) {
				t.Errorf("p=%d %s\n  parallel err=%v serial err=%v", p, q.sql, perr, baselines[i].err)
				continue
			}
			if perr != nil {
				continue
			}
			a := renderRows(pr.Rows)
			if !reflect.DeepEqual(a, baselines[i].rows) {
				t.Errorf("p=%d %s\n  parallel: %v\n  serial:   %v", p, q.sql, a, baselines[i].rows)
			}
		}
	}
}

// TestParallelSmallBatches crosses parallelism 4 with the batchSize=3
// boundary case: every operator sees many tiny morsels, shaking out
// batch-boundary and morsel-ordering bugs at once. Rows must match the
// serial engine at the same batch size exactly, order included.
func TestParallelSmallBatches(t *testing.T) {
	par := diffConn()
	par.SetParallelism(4)
	par.SetBatchSize(3)
	ref := diffConn()
	ref.SetParallelism(1)
	ref.SetBatchSize(3)
	for _, q := range diffQueries {
		pr, perr := par.Query(q.sql, q.params...)
		rr, rerr := ref.Query(q.sql, q.params...)
		if (perr == nil) != (rerr == nil) {
			t.Errorf("%s\n  parallel err=%v serial err=%v", q.sql, perr, rerr)
			continue
		}
		if perr != nil {
			continue
		}
		a, b := renderRows(pr.Rows), renderRows(rr.Rows)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s (parallel=4, batchSize=3)\n  parallel: %v\n  serial:   %v", q.sql, a, b)
		}
	}
}

func renderRows(rows [][]any) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("%#v", r)
	}
	return out
}
