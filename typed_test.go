package calcite_test

// Differential typed-vector suite: the typed columnar execution paths
// (vector kernels, typed aggregation grouping, typed join probes, typed
// spill pages) must be observationally identical to the boxed fallback.
// schema.SetForceBoxed(true) disables every typed path at once — sources
// stop attaching vectors and the spill codec writes boxed pages — so
// running the shared SQL corpus under both settings and comparing row-for-
// row checks the whole engine, not just the kernels.

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"calcite/internal/schema"
)

// typedDiffConfigs crosses the execution knobs the typed paths interact
// with: morsel parallelism, the batchSize=3 boundary case, and a memory
// limit low enough that sorts, joins and aggregates spill through the
// typed page codec.
var typedDiffConfigs = []struct {
	name        string
	parallelism int
	batchSize   int
	memLimit    int64
}{
	{name: "serial", parallelism: 1},
	{name: "parallel4", parallelism: 4},
	{name: "serial/batch3", parallelism: 1, batchSize: 3},
	{name: "serial/mem256k", parallelism: 1, memLimit: 256 << 10},
	{name: "parallel4/batch3/mem256k", parallelism: 4, batchSize: 3, memLimit: 256 << 10},
}

// corpusResult is one query's outcome rendered for comparison.
type corpusResult struct {
	err  bool
	rows []string
}

// runCorpusForced runs the whole diffQueries corpus on a fresh catalog with
// the boxed-fallback knob pinned to forced, returning per-query results.
func runCorpusForced(forced bool, parallelism, batchSize int, memLimit int64) []corpusResult {
	prev := schema.SetForceBoxed(forced)
	defer schema.SetForceBoxed(prev)
	conn := diffConn()
	conn.SetParallelism(parallelism)
	if batchSize > 0 {
		conn.SetBatchSize(batchSize)
	}
	if memLimit > 0 {
		conn.SetMemoryLimit(memLimit)
	}
	out := make([]corpusResult, len(diffQueries))
	for i, q := range diffQueries {
		res, err := conn.Query(q.sql, q.params...)
		if err != nil {
			out[i] = corpusResult{err: true}
			continue
		}
		rows := renderRows(res.Rows)
		if !strings.Contains(strings.ToUpper(q.sql), "ORDER BY") {
			sort.Strings(rows)
		}
		out[i] = corpusResult{rows: rows}
	}
	return out
}

// TestTypedAndBoxedAgree is the typed-execution safety net: every corpus
// query must produce identical results with typed vectors live and with the
// boxed fallback forced, across parallelism, tiny batches and spilling.
func TestTypedAndBoxedAgree(t *testing.T) {
	if schema.ForceBoxed() {
		t.Skip("CALCITE_FORCE_BOXED is set; typed paths are disabled globally")
	}
	for _, cfg := range typedDiffConfigs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			typed := runCorpusForced(false, cfg.parallelism, cfg.batchSize, cfg.memLimit)
			boxed := runCorpusForced(true, cfg.parallelism, cfg.batchSize, cfg.memLimit)
			for i, q := range diffQueries {
				if typed[i].err != boxed[i].err {
					t.Errorf("%s\n  typed err=%v boxed err=%v", q.sql, typed[i].err, boxed[i].err)
					continue
				}
				if !reflect.DeepEqual(typed[i].rows, boxed[i].rows) {
					t.Errorf("%s\n  typed: %v\n  boxed: %v", q.sql, typed[i].rows, boxed[i].rows)
				}
			}
		})
	}
}

// TestForceBoxedKnob pins the knob's semantics: toggling returns the
// previous value and a forced catalog serves scans without vectors.
func TestForceBoxedKnob(t *testing.T) {
	prev := schema.SetForceBoxed(true)
	if !schema.ForceBoxed() {
		t.Fatal("SetForceBoxed(true) did not take effect")
	}
	schema.SetForceBoxed(prev)
	if schema.ForceBoxed() != prev {
		t.Fatal("SetForceBoxed did not restore the previous value")
	}
	// Sanity: a query still runs correctly while forced.
	restore := schema.SetForceBoxed(true)
	defer schema.SetForceBoxed(restore)
	conn := diffConn()
	res, err := conn.Query("SELECT deptno, COUNT(*) FROM emps GROUP BY deptno ORDER BY deptno")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("forced-boxed query returned no rows")
	}
	_ = fmt.Sprintf("%v", res.Rows)
}
