package calcite_test

import (
	"fmt"
	"sync"
	"testing"

	"calcite"
)

// TestParallelScanWithConcurrentInserts races morsel workers scanning a
// MemTable against a writer appending rows. It exists for `go test -race`:
// the table's columnar-snapshot cache must serve concurrent readers while
// inserts invalidate it, without data races. Result contents are inherently
// racy (a query sees some prefix of the inserts); the invariants checked are
// "no error" and "at least the initial rows, in multiples of full inserts".
func TestParallelScanWithConcurrentInserts(t *testing.T) {
	conn := calcite.Open()
	conn.SetParallelism(4)
	const initial = 5000
	rows := make([][]any, initial)
	for i := range rows {
		rows[i] = []any{int64(i), fmt.Sprintf("r%d", i)}
	}
	tbl := conn.AddTable("hot", calcite.Columns{
		{Name: "id", Type: calcite.BigIntType},
		{Name: "name", Type: calcite.VarcharType},
	}, rows)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := initial
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := tbl.Insert([][]any{{int64(n), fmt.Sprintf("r%d", n)}}); err != nil {
				t.Error(err)
				return
			}
			n++
		}
	}()

	for i := 0; i < 25; i++ {
		res, err := conn.Query("SELECT COUNT(*), MAX(id) FROM hot WHERE id >= 0")
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		count := res.Rows[0][0].(int64)
		if count < initial {
			t.Fatalf("query %d: saw %d rows, want >= %d", i, count, initial)
		}
	}
	close(stop)
	wg.Wait()
}
