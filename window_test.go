package calcite_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"calcite"
)

// windowConn builds the window-suite fixture: device event rows with NULLs
// in both the partition and order columns, a timestamp column for RANGE
// interval frames, and binary-exact float values (quarter steps) so every
// execution mode — including incremental vs recompute — agrees bit-for-bit.
func windowConn(n int) *calcite.Connection {
	conn := calcite.Open()
	rows := make([][]any, n)
	for i := range rows {
		var dev any
		if i%17 != 3 {
			dev = int64(i % 7)
		}
		var ts any
		if i%13 != 5 {
			// Event times stride 10 minutes with duplicates every 4th row.
			ts = int64((i / 4) * 10 * 60 * 1000)
		}
		var val any
		if i%11 != 7 {
			val = float64((i*37)%400) / 4
		}
		rows[i] = []any{dev, ts, val, fmt.Sprintf("c%d", i%3)}
	}
	conn.AddTable("events", calcite.Columns{
		{Name: "dev", Type: calcite.BigIntType},
		{Name: "ts", Type: calcite.TimestampType},
		{Name: "val", Type: calcite.DoubleType},
		{Name: "cat", Type: calcite.VarcharType},
	}, rows)
	return conn
}

// windowQueries is the differential suite of ISSUE 5: DESC order keys, NULL
// order/partition values, empty frames, timestamp RANGE frames, ranking and
// navigation functions. The window operator preserves input row order, so
// results are compared order-exact even without ORDER BY.
var windowQueries = []string{
	// Running totals (the seed's only well-tested shape).
	`SELECT dev, val, SUM(val) OVER (PARTITION BY dev ORDER BY ts) FROM events`,
	// Sliding ROWS frames, incl. one wide enough to span NULL runs.
	`SELECT dev, COUNT(val) OVER (PARTITION BY dev ORDER BY ts ROWS 5 PRECEDING) FROM events`,
	`SELECT dev, SUM(val) OVER (PARTITION BY dev ORDER BY val ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) FROM events`,
	// Empty frames: the upper bound excludes the current row.
	`SELECT val, SUM(val) OVER (ORDER BY ts, val ROWS BETWEEN 3 PRECEDING AND 1 PRECEDING) FROM events`,
	// DESC order keys with value-based RANGE offsets (regression: the seed
	// walked the lower bound the wrong way).
	`SELECT dev, val, SUM(val) OVER (PARTITION BY dev ORDER BY val DESC RANGE 25 PRECEDING) FROM events`,
	`SELECT val, MIN(val) OVER (ORDER BY val DESC ROWS 4 PRECEDING), MAX(val) OVER (ORDER BY val DESC ROWS 4 PRECEDING) FROM events`,
	// The paper's headline sliding window: RANGE INTERVAL over a rowtime.
	`SELECT dev, ts, SUM(val) OVER (PARTITION BY dev ORDER BY ts RANGE INTERVAL '1' HOUR PRECEDING) FROM events`,
	`SELECT ts, COUNT(*) OVER (ORDER BY ts DESC RANGE INTERVAL '30' MINUTE PRECEDING) FROM events`,
	// Ranking and navigation.
	`SELECT dev, val, ROW_NUMBER() OVER (PARTITION BY dev ORDER BY val DESC, ts) FROM events`,
	`SELECT cat, val, RANK() OVER (PARTITION BY cat ORDER BY val), DENSE_RANK() OVER (PARTITION BY cat ORDER BY val) FROM events`,
	`SELECT dev, val, LAG(val) OVER (PARTITION BY dev ORDER BY ts), LEAD(val, 2, -1) OVER (PARTITION BY dev ORDER BY ts) FROM events`,
	// Several groups in one select, and a window over a filtered subtree.
	`SELECT dev, SUM(val) OVER (PARTITION BY dev ORDER BY ts), AVG(val) OVER (PARTITION BY cat ORDER BY val ROWS 3 PRECEDING), ROW_NUMBER() OVER (ORDER BY ts, val) FROM events`,
	`SELECT dev, COUNT(*) OVER (PARTITION BY dev ORDER BY ts ROWS 10 PRECEDING) FROM events WHERE val > 20`,
	// No PARTITION BY: one global partition (parallel falls back to serial).
	`SELECT val, SUM(val) OVER (ORDER BY val ROWS 7 PRECEDING) FROM events`,
}

// TestWindowDifferential runs the window suite through every execution mode
// — row, batch, tiny batches, parallelism 1/4, recompute baseline, and a
// quarter-budget governed run — and requires results identical to the serial
// batch engine, order included.
func TestWindowDifferential(t *testing.T) {
	base := windowConn(260)
	base.SetParallelism(1)
	variants := []struct {
		name string
		conn *calcite.Connection
	}{
		{"row", func() *calcite.Connection { c := windowConn(260); c.ForceRowMode(true); return c }()},
		{"batchSize=3", func() *calcite.Connection { c := windowConn(260); c.SetParallelism(1); c.SetBatchSize(3); return c }()},
		{"parallel=4", func() *calcite.Connection { c := windowConn(260); c.SetParallelism(4); return c }()},
		{"parallel=4,batchSize=3", func() *calcite.Connection {
			c := windowConn(260)
			c.SetParallelism(4)
			c.SetBatchSize(3)
			return c
		}()},
		{"recompute", func() *calcite.Connection {
			c := windowConn(260)
			c.SetParallelism(1)
			c.ForceWindowRecompute(true)
			return c
		}()},
		{"governed=32KB", func() *calcite.Connection {
			c := windowConn(260)
			c.SetParallelism(1)
			c.SetMemoryLimit(32 << 10)
			return c
		}()},
		{"governed=32KB,parallel=4", func() *calcite.Connection {
			c := windowConn(260)
			c.SetParallelism(4)
			c.SetMemoryLimit(32 << 10)
			return c
		}()},
	}
	for _, sql := range windowQueries {
		want, err := base.Query(sql)
		if err != nil {
			t.Fatalf("%s\n  baseline: %v", sql, err)
		}
		wantRows := renderRows(want.Rows)
		for _, v := range variants {
			got, err := v.conn.Query(sql)
			if err != nil {
				t.Errorf("%s\n  %s: %v", sql, v.name, err)
				continue
			}
			if !reflect.DeepEqual(renderRows(got.Rows), wantRows) {
				t.Errorf("%s\n  %s differs from serial baseline", sql, v.name)
			}
		}
	}
}

// TestWindowRangeDescRegression pins the DESC RANGE fix with hand-computed
// frames: ordered descending, "N PRECEDING" reaches toward LARGER values.
func TestWindowRangeDescRegression(t *testing.T) {
	conn := calcite.Open()
	conn.AddTable("t", calcite.Columns{{Name: "v", Type: calcite.BigIntType}}, [][]any{
		{int64(16)}, {int64(8)}, {int64(4)}, {int64(2)}, {int64(1)},
	})
	r, err := conn.Query(`SELECT v, SUM(v) OVER (ORDER BY v DESC RANGE 3 PRECEDING) AS s FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	// v=16 -> [16,19] = 16; 8 -> [8,11] = 8; 4 -> [4,7] = 4;
	// 2 -> [2,5] = 4+2; 1 -> [1,4] = 4+2+1.
	want := map[int64]int64{16: 16, 8: 8, 4: 4, 2: 6, 1: 7}
	for _, row := range r.Rows {
		v, s := row[0].(int64), row[1].(int64)
		if s != want[v] {
			t.Errorf("v=%d: sum=%d want %d", v, s, want[v])
		}
	}
}

// TestWindowTimestampRangeRegression pins the temporal RANGE fix: the seed's
// numeric-only lower-bound scan silently framed from the partition start.
func TestWindowTimestampRangeRegression(t *testing.T) {
	conn := calcite.Open()
	hour := int64(3600 * 1000)
	conn.AddTable("t", calcite.Columns{
		{Name: "ts", Type: calcite.TimestampType},
		{Name: "v", Type: calcite.BigIntType},
	}, [][]any{
		{int64(0), int64(1)},
		{hour / 2, int64(2)},
		{3 * hour / 2, int64(4)},
		{2 * hour, int64(8)},
	})
	r, err := conn.Query(`SELECT v, SUM(v) OVER (ORDER BY ts RANGE INTERVAL '1' HOUR PRECEDING) AS s FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 3, 6, 12} // each frame reaches back exactly one hour
	for i, row := range r.Rows {
		if got := row[1].(int64); got != want[i] {
			t.Errorf("row %d: sum=%v want %d", i, row[1], want[i])
		}
	}
	// An order key that is neither numeric nor temporal must fail cleanly
	// instead of producing partition-start frames.
	conn.AddTable("s", calcite.Columns{{Name: "name", Type: calcite.VarcharType}},
		[][]any{{"a"}, {"b"}})
	if _, err := conn.Query(`SELECT COUNT(*) OVER (ORDER BY name RANGE 1 PRECEDING) FROM s`); err == nil ||
		!strings.Contains(err.Error(), "RANGE frame") {
		t.Errorf("expected clean RANGE-key error, got %v", err)
	}
}

// TestWindowGoverned runs a window whose materialized input far exceeds the
// query budget: results must match the ungoverned run exactly, the spill
// must be visible in EXPLAIN ANALYZE, and with spilling disabled the same
// query must fail with the budget error instead of wrong results.
func TestWindowGoverned(t *testing.T) {
	sql := `SELECT dev, SUM(val) OVER (PARTITION BY dev ORDER BY ts ROWS 100 PRECEDING) AS s FROM events`
	free := windowConn(5000)
	free.SetParallelism(1)
	want, err := free.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	governed := windowConn(5000)
	governed.SetParallelism(1)
	governed.SetMemoryLimit(64 << 10) // ~quarter of the materialized rows
	got, err := governed.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(renderRows(got.Rows), renderRows(want.Rows)) {
		t.Error("governed window differs from unlimited run")
	}
	plan, err := governed.Query("EXPLAIN ANALYZE " + sql)
	if err != nil {
		t.Fatal(err)
	}
	text := renderPlan(plan.Rows)
	if !strings.Contains(text, "EnumerableWindow: rows=") ||
		!strings.Contains(text, "peak=") || !strings.Contains(text, "spill") {
		t.Errorf("EXPLAIN ANALYZE should show window spill counters:\n%s", text)
	}
	strict := windowConn(5000)
	strict.SetParallelism(1)
	strict.SetMemoryLimit(64 << 10)
	strict.EnableSpill(false)
	if _, err := strict.Query(sql); err == nil || !strings.Contains(err.Error(), "memory budget exceeded") {
		t.Errorf("spill-disabled window should fail with the budget error, got %v", err)
	}
}

func renderPlan(rows [][]any) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintln(&b, r[0])
	}
	return b.String()
}
