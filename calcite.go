// Package calcite is a Go reproduction of Apache Calcite (SIGMOD 2018): a
// foundational framework for optimized query processing over heterogeneous
// data sources. It provides SQL parsing and validation, a relational algebra
// with a trait framework (calling conventions, collations), a rule-based
// cost-based optimizer with pluggable metadata providers, an enumerable
// execution engine, materialized-view rewriting, streaming/geospatial/
// semi-structured SQL extensions, and an adapter architecture with backends
// for CSV files, an embedded SQL database (JDBC-style), a Splunk-like event
// store, a Cassandra-like wide-column store, a MongoDB-like document store,
// and event streams.
//
// Quick start:
//
//	conn := calcite.Open()
//	conn.AddTable("emps", calcite.Columns{
//		{"empid", calcite.BigIntType}, {"name", calcite.VarcharType},
//	}, [][]any{{int64(1), "Bill"}})
//	res, err := conn.Query("SELECT name FROM emps WHERE empid = 1")
package calcite

import (
	"io"
	"time"

	"calcite/internal/avatica"
	"calcite/internal/builder"
	"calcite/internal/core"
	"calcite/internal/feedback"
	"calcite/internal/mv"
	"calcite/internal/obs"
	"calcite/internal/plan"
	"calcite/internal/rel"
	"calcite/internal/schema"
	"calcite/internal/types"
)

// Connection is a configured framework instance: a catalog, rule sets,
// planner engines and an executor (the full lifecycle of Figure 1 of the
// paper).
type Connection struct {
	// Framework exposes the underlying engine for advanced configuration
	// (planner mode, fix point, rules, metadata cache).
	Framework *core.Framework
}

// Open creates a connection with the default optimizer configuration.
func Open() *Connection {
	return &Connection{Framework: core.New()}
}

// OpenChecked is Open with configuration errors (for example a malformed
// CALCITE_MEM_LIMIT environment value) returned instead of panicking, so
// binaries can print a clean startup error.
func OpenChecked() (*Connection, error) {
	fw, err := core.NewChecked()
	if err != nil {
		return nil, err
	}
	return &Connection{Framework: fw}, nil
}

// Result is a query result: column names plus rows of values.
type Result = core.Result

// Adapter is the contract data-source adapters fulfil (§5 of the paper).
type Adapter = core.Adapter

// Query parses, validates, optimizes and executes a SQL statement.
// Dynamic parameters ("?") bind positionally from params.
func (c *Connection) Query(sql string, params ...any) (*Result, error) {
	return c.Framework.Execute(sql, params...)
}

// Exec is an alias of Query for DDL/DML statements.
func (c *Connection) Exec(sql string, params ...any) (*Result, error) {
	return c.Framework.Execute(sql, params...)
}

// Explain returns the optimized plan of a query as indented text.
func (c *Connection) Explain(sql string) (string, error) {
	res, err := c.Framework.Execute("EXPLAIN " + sql)
	if err != nil {
		return "", err
	}
	return res.Plan, nil
}

// ExplainLogical returns the logical (pre-optimization) plan text.
func (c *Connection) ExplainLogical(sql string) (string, error) {
	res, err := c.Framework.Execute("EXPLAIN LOGICAL " + sql)
	if err != nil {
		return "", err
	}
	return res.Plan, nil
}

// Plan parses and optimizes a query, returning both plans for inspection.
func (c *Connection) Plan(sql string) (logical, optimized rel.Node, err error) {
	logical, err = c.Framework.ParseAndConvert(sql)
	if err != nil {
		return nil, nil, err
	}
	optimized, err = c.Framework.Optimize(logical)
	return logical, optimized, err
}

// RegisterAdapter plugs an adapter (schema + rules + converters) into the
// connection.
func (c *Connection) RegisterAdapter(a Adapter) { c.Framework.RegisterAdapter(a) }

// Column declares one column for AddTable.
type Column struct {
	Name string
	Type *types.Type
}

// Columns is a table layout.
type Columns []Column

// Shared column types for table declarations.
var (
	BigIntType    = types.BigInt
	IntegerType   = types.Integer
	DoubleType    = types.Double
	VarcharType   = types.Varchar
	BooleanType   = types.Boolean
	TimestampType = types.Timestamp
	GeometryType  = types.Geometry
	AnyType       = types.Any
)

// MapType builds a MAP column type (semi-structured data, §7.1).
func MapType(key, value *types.Type) *types.Type { return types.Map(key, value) }

// ArrayType builds an ARRAY column type.
func ArrayType(elem *types.Type) *types.Type { return types.Array(elem) }

// AddTable registers an in-memory table in the root schema and returns it
// (rows may be appended later via INSERT or the returned handle).
func (c *Connection) AddTable(name string, cols Columns, rows [][]any) *schema.MemTable {
	fields := make([]types.Field, len(cols))
	for i, col := range cols {
		fields[i] = types.Field{Name: col.Name, Type: col.Type.WithNullable(true)}
	}
	t := schema.NewMemTable(name, types.Row(fields...), rows)
	c.Framework.Catalog.AddTable(t)
	c.Framework.InvalidatePlans()
	return t
}

// Builder returns a relational expression builder over the connection's
// catalog — the language-integrated construction API of §3 (the paper's
// Pig example).
func (c *Connection) Builder() *builder.Builder {
	return builder.New(c.Framework.Catalog)
}

// ExecutePlan optimizes and runs a hand-built relational expression under
// the connection's execution configuration (batch mode, parallelism).
func (c *Connection) ExecutePlan(node rel.Node) (*Result, error) {
	optimized, err := c.Framework.Optimize(node)
	if err != nil {
		return nil, err
	}
	rows, err := c.Framework.ExecutePhysical(optimized)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: optimized.RowType().FieldNames(), Rows: rows}, nil
}

// RegisterLattice declares a star-schema lattice whose tiles answer
// aggregate queries (§6 materialized views, lattice algorithm).
func (c *Connection) RegisterLattice(l *mv.Lattice) {
	c.Framework.Views.RegisterLattice(l)
	c.Framework.InvalidatePlans()
}

// EnablePlanCache toggles the prepared-plan cache (default on): repeated
// byte-identical statements reuse their optimized physical plan and skip
// parse+optimize. The cache is invalidated by DDL, ANALYZE, INSERT and
// adapter/table registration.
func (c *Connection) EnablePlanCache(on bool) { c.Framework.DisablePlanCache = !on }

// SetPlanCacheSize bounds the prepared-plan cache's entry count (<= 0
// restores the default).
func (c *Connection) SetPlanCacheSize(n int) { c.Framework.PlanCacheSize = n }

// EnableFeedback toggles the cardinality-feedback loop (default on): every
// traced execution's actual per-operator row counts are harvested against
// the optimizer's estimates, repeated executions of a statement whose
// estimates drifted re-plan with bounded, exponentially-smoothed corrections,
// and hash joins whose build side overshot its estimate swap build/probe
// sides on the next planning. Corrections are invalidated by ANALYZE, DDL
// and INSERT alongside the plan cache.
func (c *Connection) EnableFeedback(on bool) { c.Framework.DisableFeedback = !on }

// FeedbackReport returns the feedback store's per-statement plan-quality
// summaries (est/actual/q-error per operator), worst estimation error first
// — the same payload the server's /debug/plans endpoint serves.
func (c *Connection) FeedbackReport() []feedback.PlanReport {
	return c.Framework.Feedback().Report()
}

// ForceRowMode toggles the row-at-a-time execution path. By default queries
// execute through the vectorized batch convention (column-major batches,
// compiled expressions); forcing row mode restores the interpreted
// row-at-a-time iterators for debugging and A/B measurement.
func (c *Connection) ForceRowMode(on bool) { c.Framework.RowMode = on }

// SetBatchSize overrides the vectorized path's rows-per-batch granularity
// (<= 0 restores the default).
func (c *Connection) SetBatchSize(n int) { c.Framework.BatchSize = n }

// ForceWindowRecompute toggles the window operator's O(n·frame) per-frame
// recompute path in place of the default incremental frame maintenance
// (retractable SUM/COUNT/AVG, deque-based MIN/MAX). Results are identical up
// to floating-point summation order; the toggle exists for debugging and A/B
// measurement.
func (c *Connection) ForceWindowRecompute(on bool) { c.Framework.WindowRecompute = on }

// SetMemoryLimit sets the connection-wide execution-memory budget in bytes,
// shared by all concurrent queries of this connection (0 = unlimited).
// Memory-hungry operators (sort, hash join, aggregate) charge their retained
// state against the budget and spill to temp files when it runs out: sorts
// become external merge sorts, hash joins Grace/hybrid partitioned joins,
// and aggregates flush partial accumulator states per partition and
// re-merge them on re-read. Results are identical to the unlimited run
// (sorting is stability-preserving across spills; hash-aggregate group
// order without ORDER BY may differ, as it may between any two plans).
func (c *Connection) SetMemoryLimit(n int64) { c.Framework.SetMemoryLimit(n) }

// SetQueryMemoryLimit caps each individual query's memory grant in bytes
// (0 = bounded by the connection-wide limit only).
func (c *Connection) SetQueryMemoryLimit(n int64) { c.Framework.QueryMemoryLimit = n }

// EnableSpill toggles overflow-to-disk (default on). With spilling disabled
// a query that exceeds its budget fails with a "memory budget exceeded"
// error instead — the admission-control mode.
func (c *Connection) EnableSpill(on bool) { c.Framework.DisableSpill = !on }

// SetParallelism sets the worker count for morsel-driven parallel execution.
// The default (0) uses runtime.GOMAXPROCS(0); 1 forces the serial execution
// paths; n > 1 splits scans into morsels that n workers claim dynamically,
// with exchange operators repartitioning and gathering batches between
// pipeline stages. Results are deterministic: a parallel run produces the
// same rows in the same order as the serial engine, with two value-level
// caveats — floating-point aggregates may differ in the last bit (partial
// sums reassociate), and COLLECT multiset element order follows partial-
// merge order rather than input order.
func (c *Connection) SetParallelism(n int) { c.Framework.Parallelism = n }

// SetSlowQueryThreshold marks queries at or over threshold as slow: they
// are retained in the observability engine's slow-trace ring (visible at
// the server's /debug/queries endpoint) and, when log is non-nil, written
// to it as one JSON line each. threshold 0 disables slow-query tracking.
func (c *Connection) SetSlowQueryThreshold(threshold time.Duration, log io.Writer) {
	c.Framework.SetSlowQuery(threshold, log)
}

// Obs exposes the connection's observability engine: the metrics registry
// (Prometheus text exposition), the recent/slow trace rings, and the
// slow-query configuration.
func (c *Connection) Obs() *obs.Engine { return c.Framework.Obs() }

// LastTraces returns up to n recent query traces, newest first.
func (c *Connection) LastTraces(n int) []*obs.TraceSnapshot {
	traces := c.Framework.Obs().Recent.Snapshot()
	if n > 0 && len(traces) > n {
		traces = traces[:n]
	}
	return traces
}

// UseHeuristicPlanner switches physical planning to the exhaustive
// rule-driven engine (§6's second planner engine).
func (c *Connection) UseHeuristicPlanner() {
	c.Framework.Planner = core.HeuristicHep
	c.Framework.InvalidatePlans()
}

// UseCostBasedPlanner switches back to the Volcano-style engine, optionally
// with the δ-threshold heuristic fix point.
func (c *Connection) UseCostBasedPlanner(heuristicFixpoint bool, delta float64) {
	c.Framework.Planner = core.VolcanoCostBased
	if heuristicFixpoint {
		c.Framework.FixPoint = plan.Heuristic
		c.Framework.Delta = delta
	} else {
		c.Framework.FixPoint = plan.Exhaustive
	}
	c.Framework.InvalidatePlans()
}

// Serve starts an Avatica-style JSON/HTTP server for this connection on
// addr (use "127.0.0.1:0" for an ephemeral port) and returns the bound
// address and a shutdown function.
func (c *Connection) Serve(addr string) (string, func() error, error) {
	srv := avatica.NewServer(c.Framework)
	bound, err := srv.Start(addr)
	if err != nil {
		return "", nil, err
	}
	return bound, srv.Stop, nil
}

// Dial connects to a remote Avatica-style server.
func Dial(addr string) *avatica.Client { return avatica.NewClient(addr) }
