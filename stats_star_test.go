// Statistics / join-ordering acceptance tests: ANALYZE TABLE end-to-end, the
// EXPLAIN shape of an analyzed 5-way star-schema join (fact table kept on
// the probe side, most selective dimension joined first), and a differential
// suite asserting identical results before/after ANALYZE and across
// parallelism settings.
package calcite_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"calcite"
	"calcite/internal/rel"
)

// starConn builds a star schema: a sales fact table with four foreign keys
// into dimensions of very different sizes (d1: 50, d2: 2000, d3: 2000,
// d4: 400 rows). Dimension attribute v<i> equals the key, so WHERE clauses
// on them have precisely known selectivities once analyzed. A slice of fact
// rows carries NULL fk3 values to exercise null statistics.
func starConn(factRows int) *calcite.Connection {
	conn := calcite.Open()
	fact := make([][]any, factRows)
	for i := range fact {
		var fk3 any = int64(i % 2000)
		if i%100 == 99 {
			fk3 = nil
		}
		fact[i] = []any{int64(i % 50), int64(i % 2000), fk3, int64(i % 400), float64(i % 97)}
	}
	conn.AddTable("sales", calcite.Columns{
		{Name: "fk1", Type: calcite.BigIntType},
		{Name: "fk2", Type: calcite.BigIntType},
		{Name: "fk3", Type: calcite.BigIntType},
		{Name: "fk4", Type: calcite.BigIntType},
		{Name: "amt", Type: calcite.DoubleType},
	}, fact)
	dim := func(name string, n int, suffix string) {
		rows := make([][]any, n)
		for i := range rows {
			rows[i] = []any{int64(i), int64(i)}
		}
		conn.AddTable(name, calcite.Columns{
			{Name: "k" + suffix, Type: calcite.BigIntType},
			{Name: "v" + suffix, Type: calcite.BigIntType},
		}, rows)
	}
	dim("d1", 50, "1")
	dim("d2", 2000, "2")
	dim("d3", 2000, "3")
	dim("d4", 400, "4")
	return conn
}

func analyzeStar(t testing.TB, conn *calcite.Connection) {
	t.Helper()
	for _, tab := range []string{"sales", "d1", "d2", "d3", "d4"} {
		if _, err := conn.Exec("ANALYZE TABLE " + tab); err != nil {
			t.Fatalf("ANALYZE %s: %v", tab, err)
		}
	}
}

const starQuery = `SELECT SUM(f.amt) AS total FROM sales f
	JOIN d1 ON f.fk1 = d1.k1
	JOIN d2 ON f.fk2 = d2.k2
	JOIN d3 ON f.fk3 = d3.k3
	JOIN d4 ON f.fk4 = d4.k4
	WHERE d2.v2 < 500 AND d3.v3 < 1000`

func subtreeHasTable(n rel.Node, table string) bool {
	found := false
	rel.Walk(n, func(m rel.Node) bool {
		if strings.Contains(m.Attrs(), "table=["+table+"]") {
			found = true
		}
		return !found
	})
	return found
}

// TestAnalyzeStarJoinShape is the acceptance test for histogram-driven join
// ordering: after ANALYZE, the 5-way star join must keep the fact table on
// the probe (left, streamed) side of every hash join — it is probed through
// the whole chain and never hashed into a build table — and the first
// (deepest) join must pair it with the most selective dimension (d2, whose
// filter keeps 25%).
func TestAnalyzeStarJoinShape(t *testing.T) {
	conn := starConn(20000)

	_, before, err := conn.Plan(starQuery)
	if err != nil {
		t.Fatal(err)
	}

	analyzeStar(t, conn)
	_, after, err := conn.Plan(starQuery)
	if err != nil {
		t.Fatal(err)
	}

	if rel.Digest(before) == rel.Digest(after) {
		t.Error("ANALYZE did not change the join plan")
	}

	var joins []rel.Node
	rel.Walk(after, func(n rel.Node) bool {
		if len(n.Inputs()) == 2 && strings.Contains(n.Op(), "Join") {
			joins = append(joins, n)
		}
		return true
	})
	if len(joins) != 4 {
		t.Fatalf("want 4 joins, got %d:\n%s", len(joins), rel.Explain(after))
	}
	for _, j := range joins {
		if subtreeHasTable(j.Inputs()[1], "sales") {
			t.Fatalf("fact table on the build side of %s:\n%s", j.Op(), rel.Explain(after))
		}
	}
	// The deepest join streams the fact scan directly; its build side must
	// be the most selective dimension.
	deepest := joins[len(joins)-1]
	if !subtreeHasTable(deepest.Inputs()[0], "sales") {
		t.Fatalf("fact table is not the deepest probe input:\n%s", rel.Explain(after))
	}
	if !subtreeHasTable(deepest.Inputs()[1], "d2") {
		t.Errorf("most selective dimension (d2) not joined first:\n%s", rel.Explain(after))
	}
}

// TestAnalyzeStatement: ANALYZE reports the scanned row count, EXPLAIN
// carries estimates, and inserts keep the row count live while invalidating
// column statistics.
func TestAnalyzeStatement(t *testing.T) {
	conn := starConn(1000)
	res, err := conn.Exec("ANALYZE TABLE d1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1] != int64(50) {
		t.Fatalf("ANALYZE result = %v", res.Rows)
	}
	if _, err := conn.Exec("ANALYZE TABLE nope"); err == nil {
		t.Fatal("ANALYZE of a missing table must fail")
	}

	plan, err := conn.Explain("SELECT * FROM d1 WHERE v1 < 10")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "rows=") || !strings.Contains(plan, "cost=") {
		t.Fatalf("EXPLAIN lacks estimates:\n%s", plan)
	}
	// The histogram puts the filter at ~10 rows (vs. 25 for the 0.5
	// fallback): the filter line must carry the sharpened estimate.
	for _, line := range strings.Split(plan, "\n") {
		if strings.Contains(line, "Filter") && !strings.Contains(line, "rows=10") {
			t.Errorf("filter estimate not histogram-driven: %s", line)
		}
	}

	// Inserts advance the row count and drop per-column statistics.
	if _, err := conn.Exec("INSERT INTO d1 VALUES (50, 50)"); err != nil {
		t.Fatal(err)
	}
	tab, ok := conn.Framework.Catalog.Table("d1")
	if !ok {
		t.Fatal("d1 missing")
	}
	st := tab.Stats()
	if st.RowCount != 51 {
		t.Errorf("row count after insert = %v, want 51", st.RowCount)
	}
	if st.Columns != nil {
		t.Error("column statistics survived an insert")
	}
	if st.Analyzed {
		t.Error("Analyzed flag survived an insert that invalidated column stats")
	}
}

// TestMaterializedViewSurvivesAnalyze: a join-containing materialized view
// must keep matching after ANALYZE changes the cost-based join order — the
// view's canonical plan is re-normalized with current statistics on every
// planning session.
func TestMaterializedViewSurvivesAnalyze(t *testing.T) {
	conn := starConn(4000)
	mvSQL := `CREATE MATERIALIZED VIEW mv3 AS
		SELECT d1.v1, SUM(f.amt) AS total FROM sales f
		JOIN d1 ON f.fk1 = d1.k1
		JOIN d2 ON f.fk2 = d2.k2
		JOIN d3 ON f.fk3 = d3.k3
		GROUP BY d1.v1`
	if _, err := conn.Exec(mvSQL); err != nil {
		t.Fatal(err)
	}
	query := `SELECT d1.v1, SUM(f.amt) AS total FROM sales f
		JOIN d1 ON f.fk1 = d1.k1
		JOIN d2 ON f.fk2 = d2.k2
		JOIN d3 ON f.fk3 = d3.k3
		GROUP BY d1.v1`
	plan, err := conn.Explain(query)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "mv3") {
		t.Fatalf("query not answered from the view before ANALYZE:\n%s", plan)
	}
	analyzeStar(t, conn)
	plan, err = conn.Explain(query)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "mv3") || strings.Contains(plan, "table=[sales]") {
		t.Fatalf("materialized view stopped matching after ANALYZE:\n%s", plan)
	}
}

// differentialQueries are ≥4-way join queries executed before/after ANALYZE
// and at parallelism 1/4; results must agree.
var differentialQueries = []string{
	starQuery,
	`SELECT d1.v1, COUNT(*) AS n, SUM(f.amt) AS total FROM sales f
		JOIN d1 ON f.fk1 = d1.k1
		JOIN d2 ON f.fk2 = d2.k2
		JOIN d4 ON f.fk4 = d4.k4
		WHERE d2.v2 < 100 AND d4.v4 <> 3
		GROUP BY d1.v1 ORDER BY d1.v1`,
	`SELECT f.fk2, d3.v3 FROM sales f
		JOIN d1 ON f.fk1 = d1.k1
		JOIN d2 ON f.fk2 = d2.k2
		JOIN d3 ON f.fk3 = d3.k3
		WHERE d1.v1 = 7 AND d3.v3 >= 1990 ORDER BY f.fk2, d3.v3`,
	`SELECT COUNT(*) AS n FROM sales f
		JOIN d1 ON f.fk1 = d1.k1
		JOIN d2 ON f.fk2 = d2.k2
		JOIN d3 ON f.fk3 = d3.k3
		JOIN d4 ON f.fk4 = d4.k4
		WHERE d2.v2 < 50 OR d2.v2 > 1950`,
}

func runRows(t *testing.T, conn *calcite.Connection, sql string) []string {
	t.Helper()
	res, err := conn.Query(sql)
	if err != nil {
		t.Fatalf("query failed: %v\n%s", err, sql)
	}
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = fmt.Sprint(r)
	}
	return out
}

// TestAnalyzeDifferential: for every query, (a) analyzed and unanalyzed
// plans return the same multiset of rows, and (b) parallel execution at 4
// workers reproduces the serial row order exactly, analyzed or not.
func TestAnalyzeDifferential(t *testing.T) {
	const factRows = 8000
	plain := starConn(factRows)
	plain.SetParallelism(1)
	analyzed := starConn(factRows)
	analyzed.SetParallelism(1)
	analyzeStar(t, analyzed)

	for qi, sql := range differentialQueries {
		serialPlain := runRows(t, plain, sql)
		serialAnalyzed := runRows(t, analyzed, sql)

		sortedPlain := append([]string(nil), serialPlain...)
		sortedAnalyzed := append([]string(nil), serialAnalyzed...)
		sort.Strings(sortedPlain)
		sort.Strings(sortedAnalyzed)
		if strings.Join(sortedPlain, "\n") != strings.Join(sortedAnalyzed, "\n") {
			t.Errorf("query %d: analyzed results differ from unanalyzed\nplain:    %v\nanalyzed: %v",
				qi, sortedPlain, sortedAnalyzed)
		}

		for _, conn := range []*calcite.Connection{plain, analyzed} {
			serial := runRows(t, conn, sql)
			conn.SetParallelism(4)
			par := runRows(t, conn, sql)
			conn.SetParallelism(1)
			if strings.Join(serial, "\n") != strings.Join(par, "\n") {
				t.Errorf("query %d: parallel(4) row order differs from serial", qi)
			}
		}
	}
}
